package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/moea"
)

// TestFitnessCacheDeterminism pins the tentpole's hard constraint: a full
// two-stage Proposed run with the genome-level fitness cache enabled
// produces exactly the same front as one with the cache force-disabled.
func TestFitnessCacheDeterminism(t *testing.T) {
	run := func(cacheCap int) *Front {
		inst := sobelInstance()
		inst.FitnessCacheCap = cacheCap
		front, err := Proposed(inst, smallCfg(42), filteredLib(t, inst))
		if err != nil {
			t.Fatal(err)
		}
		return front
	}
	cached := run(0)    // default-capacity cache
	uncached := run(-1) // memoization disabled
	if !reflect.DeepEqual(cached, uncached) {
		t.Fatalf("fronts diverge with fitness cache on vs off:\ncached:   %+v\nuncached: %+v",
			cached, uncached)
	}
	// A tiny cache forces constant eviction; results must still agree.
	tiny := run(fitnessShards) // one entry per shard
	if !reflect.DeepEqual(cached, tiny) {
		t.Fatalf("fronts diverge under eviction pressure")
	}
}

// TestFitnessCacheHitsOnProposedRun checks the pfCLR→fcCLR reuse the cache
// exists for: a two-stage run must record hits (re-encoded seeds, duplicate
// genomes from elitist convergence) and report them via the instance stats.
func TestFitnessCacheHitsOnProposedRun(t *testing.T) {
	inst := sobelInstance()
	if _, err := Proposed(inst, smallCfg(7), filteredLib(t, inst)); err != nil {
		t.Fatal(err)
	}
	st := inst.FitnessCacheStats()
	if st.Hits == 0 {
		t.Fatalf("expected fitness-cache hits on a two-stage proposed run, got %+v", st)
	}
	if st.Misses == 0 {
		t.Fatalf("expected fitness-cache misses, got %+v", st)
	}
	if st.Entries == 0 || st.Entries > st.Capacity {
		t.Fatalf("entries %d outside (0, capacity %d]", st.Entries, st.Capacity)
	}
	if hr := st.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %v outside (0,1)", hr)
	}
}

// TestFitnessCacheDisabled verifies FitnessCacheCap < 0 turns memoization
// off entirely.
func TestFitnessCacheDisabled(t *testing.T) {
	inst := sobelInstance()
	inst.FitnessCacheCap = -1
	if _, err := FcCLR(inst, smallCfg(3)); err != nil {
		t.Fatal(err)
	}
	if st := inst.FitnessCacheStats(); st != (FitnessCacheStats{}) {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

// TestFitnessCacheEvictionBound floods a tiny cache and checks occupancy
// never exceeds the bound while eviction counters advance.
func TestFitnessCacheEvictionBound(t *testing.T) {
	inst := sobelInstance()
	inst.FitnessCacheCap = fitnessShards // one entry per shard
	if _, err := FcCLR(inst, smallCfg(11)); err != nil {
		t.Fatal(err)
	}
	st := inst.FitnessCacheStats()
	if st.Capacity != fitnessShards {
		t.Fatalf("capacity %d, want %d", st.Capacity, fitnessShards)
	}
	if st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with %d-entry cache, got %+v", st.Capacity, st)
	}
}

// TestFitnessCacheCollisionBypass exercises the verified-collision path:
// two different keys forced onto one hash must both evaluate correctly and
// count a bypass.
func TestFitnessCacheCollisionBypass(t *testing.T) {
	c := newFitnessCache(64)
	keyA := []uint64{1, 2, 3}
	keyB := []uint64{4, 5, 6} // different key, same forced hash below
	const hash = 0xdeadbeef
	evalA := c.lookup(hash, keyA, func() ([]float64, float64) { return []float64{1}, 0 })
	evalB := c.lookup(hash, keyB, func() ([]float64, float64) { return []float64{2}, 1 })
	if evalA.Objectives[0] != 1 || evalB.Objectives[0] != 2 || evalB.Violation != 1 {
		t.Fatalf("collision returned wrong evaluations: %+v %+v", evalA, evalB)
	}
	st := c.stats()
	if st.Bypasses != 1 || st.Misses != 1 {
		t.Fatalf("want 1 bypass + 1 miss, got %+v", st)
	}
	// The original key still hits.
	again := c.lookup(hash, keyA, func() ([]float64, float64) {
		t.Fatal("recompute on hit")
		return nil, 0
	})
	if again.Objectives[0] != 1 {
		t.Fatalf("hit returned %v", again.Objectives)
	}
}

// TestFitnessCacheSingleFlight checks concurrent lookups of one key run
// the computation exactly once and everyone gets its result.
func TestFitnessCacheSingleFlight(t *testing.T) {
	c := newFitnessCache(0)
	key := []uint64{9, 9, 9}
	hash := fitnessHash(key)
	computes := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := c.lookup(hash, key, func() ([]float64, float64) {
				mu.Lock()
				computes++
				mu.Unlock()
				return []float64{42}, 0
			})
			if ev.Objectives[0] != 42 {
				t.Errorf("got %v", ev.Objectives)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
}

// TestFitnessKeyRoundTrip checks the canonical key distinguishes the
// schedule inputs it must and matches when they agree.
func TestFitnessKeyRoundTrip(t *testing.T) {
	inst := sobelInstance()
	p := newFCProblem(inst, allFree)
	rng := rand.New(rand.NewSource(5))
	g1 := randomGenomeFor(p, rng)
	g2 := g1.Clone()
	d1 := p.decisionsInto(nil, g1)
	k1 := appendFitnessKey(nil, g1.Order, d1)
	k2 := appendFitnessKey(nil, g2.Order, p.decisionsInto(nil, g2))
	if !keyEqual(k1, k2) {
		t.Fatal("identical genomes produced different keys")
	}
	// Swapping two order entries must change the key.
	g2.Order[0], g2.Order[1] = g2.Order[1], g2.Order[0]
	k3 := appendFitnessKey(nil, g2.Order, p.decisionsInto(nil, g2))
	if keyEqual(k1, k3) {
		t.Fatal("different orders produced equal keys")
	}
	if fitnessHash(k1) == fitnessHash(k3) {
		t.Fatal("hash failed to separate different keys (astronomically unlikely)")
	}
}

func randomGenomeFor(p *fcProblem, rng *rand.Rand) *moea.Genome {
	n := p.NumTasks()
	g := &moea.Genome{Order: rng.Perm(n)}
	for t := 0; t < n; t++ {
		g.Genes = append(g.Genes, p.RandomGene(rng, t))
	}
	return g
}
