package core

import (
	"math"

	"repro/internal/moea"
	"repro/internal/schedule"
)

// problemCore is the shared shape of the fcCLR and pfCLR problem
// formulations: both decode genes task-by-task into schedule decisions and
// evaluate them against the same instance, so one evaluator implementation
// (coreEvaluator) serves both.
type problemCore interface {
	moea.Problem
	instance() *Instance
	sysObjs() []SystemObjective
	fitCache() *fitnessCache
	// decodeDecision resolves one task's gene into its schedule decision.
	decodeDecision(task int, g moea.Gene) schedule.TaskDecision
}

// decisionsIntoCore resolves a whole genome into per-task schedule
// decisions, reusing dst's capacity.
func decisionsIntoCore(p problemCore, dst []schedule.TaskDecision, g *moea.Genome) []schedule.TaskDecision {
	n := p.NumTasks()
	if cap(dst) < n {
		dst = make([]schedule.TaskDecision, n)
	}
	dst = dst[:n]
	for t := 0; t < n; t++ {
		dst[t] = p.decodeDecision(t, g.Genes[t])
	}
	return dst
}

// evalState is the opaque replay state coreEvaluator returns from
// EvaluateDelta: the canonical fitness key of the evaluation (which fully
// encodes the schedule inputs — the priority permutation plus every task's
// decoded decision as bit patterns), the schedule replay artifact, and the
// evaluation itself. Decisions are reconstructed from the key words on
// demand instead of being retained as a second copy. States are immutable
// once returned and may be shared by several offspring.
type evalState struct {
	key   []uint64
	times *schedule.SeqTimes
	eval  moea.Evaluation
}

// Key layout (see appendFitnessKey): word 0 is the task count n, words
// [1, 1+n) the priority permutation, then 10 words per task — the PE id
// followed by the 8 metric fields and the footprint as float64 bits.
const decisionWords = 10

func decisionBase(n, task int) int { return 1 + n + decisionWords*task }

// encodeDecision writes the 10-word canonical encoding of one decision,
// mirroring appendFitnessKey's per-task block exactly.
func encodeDecision(dst *[decisionWords]uint64, d schedule.TaskDecision) {
	dst[0] = uint64(d.PE)
	dst[1] = math.Float64bits(d.Metrics.EtaHours)
	dst[2] = math.Float64bits(d.Metrics.MinExTimeUS)
	dst[3] = math.Float64bits(d.Metrics.AvgExTimeUS)
	dst[4] = math.Float64bits(d.Metrics.ErrProb)
	dst[5] = math.Float64bits(d.Metrics.MTTFHours)
	dst[6] = math.Float64bits(d.Metrics.PowerW)
	dst[7] = math.Float64bits(d.Metrics.EnergyUJ)
	dst[8] = math.Float64bits(d.Metrics.TempC)
	dst[9] = math.Float64bits(d.MemKB)
}

// decisionsFromKey reconstructs the decision slice a key encodes. Bit
// patterns round-trip exactly, so the reconstruction is bit-identical to
// the decisions the key was built from.
func decisionsFromKey(dst []schedule.TaskDecision, key []uint64) []schedule.TaskDecision {
	n := int(key[0])
	if cap(dst) < n {
		dst = make([]schedule.TaskDecision, n)
	}
	dst = dst[:n]
	for t := 0; t < n; t++ {
		b := key[decisionBase(n, t):]
		d := &dst[t]
		d.PE = int(b[0])
		d.Metrics.EtaHours = math.Float64frombits(b[1])
		d.Metrics.MinExTimeUS = math.Float64frombits(b[2])
		d.Metrics.AvgExTimeUS = math.Float64frombits(b[3])
		d.Metrics.ErrProb = math.Float64frombits(b[4])
		d.Metrics.MTTFHours = math.Float64frombits(b[5])
		d.Metrics.PowerW = math.Float64frombits(b[6])
		d.Metrics.EnergyUJ = math.Float64frombits(b[7])
		d.Metrics.TempC = math.Float64frombits(b[8])
		d.MemKB = math.Float64frombits(b[9])
	}
	return dst
}

// coreEvaluator is the per-worker evaluation scratch shared by both
// problem formulations: a reusable decision buffer, a reusable schedule
// evaluator, the fitness-cache key scratch and the delta change mask. It
// implements moea.DeltaEvaluator; delta evaluation is exact — every path
// produces bit-identical evaluations to Evaluate.
type coreEvaluator struct {
	p         problemCore
	sched     *schedule.Evaluator
	decisions []schedule.TaskDecision
	key       []uint64
	changed   []bool
}

func (e *coreEvaluator) Evaluate(g *moea.Genome) moea.Evaluation {
	e.decisions = decisionsIntoCore(e.p, e.decisions, g)
	fit := e.p.fitCache()
	if fit == nil {
		return e.run(g.Order, nil)
	}
	e.key = appendFitnessKey(e.key[:0], g.Order, e.decisions)
	return fit.lookup(fitnessHash(e.key), e.key, func() ([]float64, float64) {
		ev := e.run(g.Order, nil)
		return ev.Objectives, ev.Violation
	})
}

// run schedules the already-decoded decisions and derives the evaluation,
// capturing the replay artifact when capture is non-nil.
func (e *coreEvaluator) run(order []int, capture *schedule.SeqTimes) moea.Evaluation {
	inst := e.p.instance()
	res, err := e.sched.RunWithCommCapture(inst.Graph, inst.Platform, order, e.decisions, inst.Comm, capture)
	if err != nil {
		panic("core: schedule evaluation failed: " + err.Error())
	}
	return moea.Evaluation{
		Objectives: objectiveVector(res, e.p.sysObjs()),
		Violation:  totalViolation(inst, res),
	}
}

// EvaluateDelta implements moea.DeltaEvaluator. With a usable parent state
// it decodes only the genes that differ from the parent, patches the
// parent's fitness key in place, and — when the scheduling order is
// unchanged — replays the parent's schedule prefix up to the first
// affected task. Every shortcut is exactness-preserving:
//
//   - fitness depends only on the key (order + decoded decisions), so an
//     unchanged key returns the parent's evaluation verbatim;
//   - the schedule prefix replay is bit-identical to a full run (see
//     schedule.RunWithCommDelta);
//   - the fitness cache is still consulted with the patched key, so delta
//     and full evaluation populate and hit the same entries.
func (e *coreEvaluator) EvaluateDelta(g *moea.Genome, parent *moea.Genome, parentState any) (moea.Evaluation, any) {
	st, ok := parentState.(*evalState)
	if parent == nil || !ok || st == nil {
		return e.evaluateRetain(g)
	}
	n := e.p.NumTasks()

	// Patch a copy of the parent's key: order words first, then the
	// 10-word decision block of every task whose gene changed.
	e.key = append(e.key[:0], st.key...)
	sameOrder := true
	for i, t := range g.Order {
		if w := uint64(t); e.key[1+i] != w {
			e.key[1+i] = w
			sameOrder = false
		}
	}
	if cap(e.changed) < n {
		e.changed = make([]bool, n)
	}
	e.changed = e.changed[:n]
	anyChanged := false
	reused := 0
	var buf [decisionWords]uint64
	for t := 0; t < n; t++ {
		e.changed[t] = false
		if g.Genes[t] == parent.Genes[t] {
			reused++
			continue
		}
		encodeDecision(&buf, e.p.decodeDecision(t, g.Genes[t]))
		b := decisionBase(n, t)
		if !keyEqual(e.key[b:b+decisionWords], buf[:]) {
			copy(e.key[b:b+decisionWords], buf[:])
			e.changed[t] = true
			anyChanged = true
		}
	}
	if reused > 0 {
		accelCounters.metricsReused.Add(uint64(reused))
	}
	if sameOrder && !anyChanged {
		// Identical schedule inputs: the parent's evaluation is the
		// child's, no scheduling and no cache traffic at all.
		accelCounters.deltaParentReuse.Add(1)
		return st.eval, st
	}

	keyCopy := append([]uint64(nil), e.key...)
	compute := func() ([]float64, float64, *schedule.SeqTimes) {
		inst := e.p.instance()
		e.decisions = decisionsFromKey(e.decisions, keyCopy)
		capture := &schedule.SeqTimes{}
		var res *schedule.Result
		var err error
		if sameOrder && st.times != nil {
			accelCounters.deltaPrefixRuns.Add(1)
			res, err = e.sched.RunWithCommDelta(inst.Graph, inst.Platform, g.Order, e.decisions, inst.Comm, st.times, e.changed, capture)
		} else {
			accelCounters.deltaFullRuns.Add(1)
			res, err = e.sched.RunWithCommCapture(inst.Graph, inst.Platform, g.Order, e.decisions, inst.Comm, capture)
		}
		if err != nil {
			panic("core: schedule evaluation failed: " + err.Error())
		}
		return objectiveVector(res, e.p.sysObjs()), totalViolation(inst, res), capture
	}
	nst := &evalState{key: keyCopy}
	if fit := e.p.fitCache(); fit != nil {
		nst.eval, nst.times = fit.lookupTimes(fitnessHash(keyCopy), keyCopy, compute)
	} else {
		objs, viol, times := compute()
		nst.eval = moea.Evaluation{Objectives: objs, Violation: viol}
		nst.times = times
	}
	return nst.eval, nst
}

// evaluateRetain is a full evaluation that additionally captures the
// replay state a later EvaluateDelta call can build on — the path taken
// for initial-population members and parentless offspring.
func (e *coreEvaluator) evaluateRetain(g *moea.Genome) (moea.Evaluation, any) {
	e.decisions = decisionsIntoCore(e.p, e.decisions, g)
	e.key = appendFitnessKey(e.key[:0], g.Order, e.decisions)
	keyCopy := append([]uint64(nil), e.key...)
	compute := func() ([]float64, float64, *schedule.SeqTimes) {
		accelCounters.deltaFullRuns.Add(1)
		capture := &schedule.SeqTimes{}
		ev := e.run(g.Order, capture)
		return ev.Objectives, ev.Violation, capture
	}
	nst := &evalState{key: keyCopy}
	if fit := e.p.fitCache(); fit != nil {
		nst.eval, nst.times = fit.lookupTimes(fitnessHash(keyCopy), keyCopy, compute)
	} else {
		objs, viol, times := compute()
		nst.eval = moea.Evaluation{Objectives: objs, Violation: viol}
		nst.times = times
	}
	return nst.eval, nst
}
