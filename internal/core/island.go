package core

import (
	"fmt"

	"repro/internal/moea"
)

// Island-model execution of one GA stage. The stage's logical population
// splits across cfg.Islands cooperating islands (moea.RunIslands); each
// island checkpoints independently under a derived stage key, so a killed
// island resumes to the same front while its peers' snapshots stay
// untouched — the per-island extension of the PR 5 durable-run contract.

// IslandStage derives the checkpoint stage key of one island of a GA
// stage. Each island snapshots under its own key through the ordinary
// Checkpointer interface, so every store backend gains island durability
// without schema changes.
func IslandStage(stage string, island int) string {
	return fmt.Sprintf("%s/island%d", stage, island)
}

// runIslandStage executes one GA stage in island mode and returns the
// merged engine result. Progress flows through island 0 only — its
// generation count equals the stage budget, so stage progress semantics
// (TotalGenerations, generation indices) are identical to a
// single-population run.
func runIslandStage(p moea.Problem, cfg RunConfig, params moea.Params, seeds []*moea.Genome, stage string) (*moea.Result, error) {
	if cfg.Engine != NSGA2 {
		return nil, fmt.Errorf("core: island mode requires the NSGA-II engine, got %v", cfg.Engine)
	}
	migrants := cfg.Migrants
	if migrants <= 0 {
		migrants = 2
	}
	ckEvery := cfg.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = DefaultCheckpointEvery
	}
	onGen := params.OnGeneration
	icfg := moea.IslandConfig{
		N:     cfg.Islands,
		Every: cfg.MigrationEvery,
		Count: migrants,
		PerIsland: func(i int, ip *moea.Params) {
			if i == 0 {
				ip.OnGeneration = onGen
			}
			// Heterogeneous exploration ladder: island 0 keeps the base
			// operator rates (pure exploitation); each later island mutates
			// progressively harder, up to 3× the base rate, capped at 0.5.
			// Migration feeds the explorers' discoveries back into the
			// exploiting islands — the mechanism that lets the merged front
			// beat an equal-budget single population.
			if i > 0 && cfg.Islands > 1 {
				ip.MutationProb *= 1 + 2*float64(i)/float64(cfg.Islands-1)
				if ip.MutationProb > 0.5 {
					ip.MutationProb = 0.5
				}
			}
			if cfg.Checkpoint != nil {
				st := IslandStage(stage, i)
				ck := cfg.Checkpoint
				ip.Resume = ck.ResumeStage(st)
				ip.CheckpointEvery = ckEvery
				ip.OnCheckpoint = func(cp *moea.Checkpoint) { ck.SaveStage(st, cp) }
			}
		},
	}
	return moea.RunIslands(p, params, seeds, icfg)
}
