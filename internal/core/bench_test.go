package core

import "testing"

// BenchmarkDeltaEvalOn measures a full fcCLR run with incremental delta
// evaluation (the default production path).
func BenchmarkDeltaEvalOn(b *testing.B) {
	inst := synInstance(20, 7)
	cfg := RunConfig{Pop: 32, Gens: 12, Seed: 7, Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FcCLR(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaEvalOff is the same run with every offspring evaluated
// from scratch — the pre-delta baseline.
func BenchmarkDeltaEvalOff(b *testing.B) {
	inst := synInstance(20, 7)
	cfg := RunConfig{Pop: 32, Gens: 12, Seed: 7, Workers: 1, DisableDelta: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FcCLR(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurrogateScreened measures the same budget with surrogate
// screening at the default fraction.
func BenchmarkSurrogateScreened(b *testing.B) {
	inst := synInstance(20, 7)
	cfg := RunConfig{Pop: 32, Gens: 12, Seed: 7, Workers: 1, SurrogateFraction: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FcCLR(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
