// Package core implements the CL(R)Early system-level DSE methodology of
// Section V of the paper: CLR-integrated task mapping on a heterogeneous
// MPSoC via MOEA-based optimization, in three strategies —
//
//   - fcCLR: full-configuration CLR, the problem-agnostic baseline (the
//     Das-et-al-style approach): every CLR decision of every task is an
//     independent degree of freedom of the GA;
//   - pfCLR: the GA explores only the task-level Pareto-filtered
//     implementations produced by tDSE;
//   - proposed: the two-stage method of Fig. 4(b) — the pfCLR Pareto front
//     is decoded into full-configuration genomes and used to seed an fcCLR
//     run (directed search with design-space pruning);
//
// plus the single-layer baselines (DVFS-only, HWRel-only, SSWRel-only,
// ASWRel-only) whose merged fronts form the "Agnostic" comparison of
// Fig. 7 / TABLE V.
package core

import (
	"fmt"

	"repro/internal/characterize"
	"repro/internal/faultmodel"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
)

// SystemObjective identifies one system-level optimization objective of
// Eq. 5. All are minimized; Lifetime is negated internally.
type SystemObjective int

const (
	// Makespan minimizes S_app (Eq. 1).
	Makespan SystemObjective = iota
	// AppErrProb minimizes 1 − F_app (Eq. 3) — the "application error
	// probability" axis of the paper's figures.
	AppErrProb
	// Lifetime maximizes L_app = MTTF_sys (Eq. 2).
	Lifetime
	// Energy minimizes J_app (Eq. 4).
	Energy
	// PeakPower minimizes W_app (Eq. 4).
	PeakPower
)

// String names the objective.
func (o SystemObjective) String() string {
	switch o {
	case Makespan:
		return "makespan"
	case AppErrProb:
		return "app-error-probability"
	case Lifetime:
		return "lifetime"
	case Energy:
		return "energy"
	case PeakPower:
		return "peak-power"
	default:
		return fmt.Sprintf("SystemObjective(%d)", int(o))
	}
}

// DefaultObjectives returns the two objectives plotted throughout the
// paper's system-level evaluation: average makespan and application error
// probability.
func DefaultObjectives() []SystemObjective {
	return []SystemObjective{Makespan, AppErrProb}
}

// objectiveValue extracts a minimization value from a schedule result.
func objectiveValue(r *schedule.Result, o SystemObjective) float64 {
	switch o {
	case Makespan:
		return r.MakespanUS
	case AppErrProb:
		return r.ErrProb
	case Lifetime:
		return -r.MTTFHours
	case Energy:
		return r.EnergyUJ
	case PeakPower:
		return r.PeakPowerW
	default:
		panic(fmt.Sprintf("core: unknown system objective %d", int(o)))
	}
}

// Instance bundles one DSE problem: the application, the platform, the
// implementation characterizations, the reliability method catalog, the
// optimization objectives and the QoS constraints of Eq. 5.
type Instance struct {
	Graph      *taskgraph.Graph
	Platform   *platform.Platform
	Lib        *characterize.Library
	Catalog    *relmodel.Catalog
	Objectives []SystemObjective
	Spec       schedule.Spec
	// Comm enables the communication-aware scheduling extension; the zero
	// value reproduces the paper's communication-free estimation.
	Comm schedule.CommModel
	// EnforceMemory enables the storage-constraint extension: mappings
	// whose per-PE resident footprint exceeds the PE type's LocalMemKB are
	// treated as constraint violations. Off reproduces the paper's model.
	EnforceMemory bool
	// FitnessCacheCap bounds the instance's genome-level fitness cache
	// (see fitcache.go): 0 means DefaultFitnessCacheEntries, negative
	// disables memoization. Cached and uncached evaluations are
	// byte-identical, so this knob trades memory for speed only.
	FitnessCacheCap int
	// Faults, when non-nil, evaluates every task metric under the resolved
	// per-PE-type combined fault model (relmodel.EvaluateFM); nil keeps the
	// SEU-only path bit-identical to the base engine. The model is constant
	// per instance, so the shared metrics cache stays keyed by
	// (taskType, impl, assignment) alone — derive a fresh instance (as
	// WithPlatform does) rather than mutating this field on a live one.
	Faults *faultmodel.Model

	// metrics is the lazily created instance-level Markov-metric cache
	// (see cache.go), shared by every strategy run on this instance. A
	// plain pointer keeps Instance values copyable; use WithPlatform when
	// deriving an instance whose metrics differ. fitness is the analogous
	// genome-level evaluation cache (fitcache.go).
	metrics *metricsCache
	fitness *fitnessCache
}

// Validate checks cross-references between the instance's components.
func (in *Instance) Validate() error {
	if in.Graph == nil || in.Platform == nil || in.Lib == nil || in.Catalog == nil {
		return fmt.Errorf("core: instance has nil components")
	}
	if err := in.Catalog.Validate(); err != nil {
		return err
	}
	if err := in.Lib.Validate(in.Platform); err != nil {
		return err
	}
	if in.Graph.NumTypes() > in.Lib.NumTypes() {
		return fmt.Errorf("core: application uses %d task types, library characterizes %d",
			in.Graph.NumTypes(), in.Lib.NumTypes())
	}
	if len(in.Objectives) == 0 {
		return fmt.Errorf("core: no optimization objectives")
	}
	return nil
}

// objectives returns the instance's objectives, defaulting to the paper's.
func (in *Instance) objectives() []SystemObjective {
	if len(in.Objectives) == 0 {
		return DefaultObjectives()
	}
	return in.Objectives
}

// compatiblePEs returns, per PE type index, the IDs of the platform's PEs
// of that type.
func compatiblePEs(p *platform.Platform) [][]int {
	out := make([][]int, len(p.Types()))
	for i, t := range p.Types() {
		out[i] = p.PEsOfType(t)
	}
	return out
}

// maxModes returns the largest DVFS mode count across PE types, the range
// of the genome's Mode field (decoded modulo the actual count).
func maxModes(p *platform.Platform) int {
	m := 0
	for _, t := range p.Types() {
		if len(t.Modes) > m {
			m = len(t.Modes)
		}
	}
	return m
}
