package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/pareto"
)

func islandCfg(seed int64) RunConfig {
	cfg := smallCfg(seed)
	cfg.Islands = 2
	cfg.MigrationEvery = 3
	cfg.Migrants = 2
	return cfg
}

// TestIslandDeterminism is the acceptance contract of island mode: for a
// fixed seed and island count, the merged front is byte-identical across
// worker counts and placements, across a mid-run kill and restart, and
// across checkpoint/resume cycles.
func TestIslandDeterminism(t *testing.T) {
	inst := sobelInstance()
	cfg := islandCfg(9)

	ref, err := FcCLR(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := frontBytes(t, ref)
	if len(ref.Points) == 0 {
		t.Fatal("island run produced an empty front")
	}

	t.Run("worker-placement", func(t *testing.T) {
		for _, workers := range []int{1, 3, 0} {
			c := cfg
			c.Workers = workers
			res, err := FcCLR(inst, c)
			if err != nil {
				t.Fatal(err)
			}
			if frontBytes(t, res) != want {
				t.Fatalf("front diverged with %d workers", workers)
			}
		}
	})

	t.Run("restart-and-resume", func(t *testing.T) {
		ck := newMemCheckpointer()
		ctx, cancel := context.WithCancel(context.Background())
		icfg := cfg
		icfg.Ctx = ctx
		icfg.Checkpoint = ck
		icfg.CheckpointEvery = 2
		icfg.Progress = func(ev ProgressEvent) {
			if ev.Generation == 7 {
				cancel()
			}
		}
		if _, err := FcCLR(inst, icfg); err == nil {
			t.Fatal("interrupted island run returned no error")
		}
		// Every island checkpointed under its derived stage key.
		for i := 0; i < cfg.Islands; i++ {
			cp := ck.ResumeStage(IslandStage("fcclr", i))
			if cp == nil {
				t.Fatalf("island %d has no engine snapshot", i)
			}
			if cp.Generation == 0 {
				t.Fatalf("island %d snapshot at generation 0", i)
			}
		}
		rcfg := cfg
		rcfg.Checkpoint = ck
		res, err := FcCLR(inst, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		if frontBytes(t, res) != want {
			t.Fatal("resumed island run changed the front")
		}
		if res.Evaluations != ref.Evaluations {
			t.Fatalf("resumed evaluations %d != reference %d", res.Evaluations, ref.Evaluations)
		}
		// A second rerun restores the completed front without re-running.
		again, err := FcCLR(inst, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		if frontBytes(t, again) != want {
			t.Fatal("front restore after completion diverged")
		}
	})

	t.Run("double-interrupt", func(t *testing.T) {
		ck := newMemCheckpointer()
		run := func(cancelAt int) (*Front, error) {
			ctx, cancel := context.WithCancel(context.Background())
			icfg := cfg
			icfg.Ctx = ctx
			icfg.Checkpoint = ck
			icfg.CheckpointEvery = 2
			if cancelAt > 0 {
				var once sync.Once
				icfg.Progress = func(ev ProgressEvent) {
					if ev.Generation >= cancelAt {
						once.Do(cancel)
					}
				}
			}
			defer cancel()
			return FcCLR(inst, icfg)
		}
		if _, err := run(4); err == nil {
			t.Fatal("first interrupt lost")
		}
		if _, err := run(8); err == nil {
			t.Fatal("second interrupt lost")
		}
		res, err := run(0)
		if err != nil {
			t.Fatal(err)
		}
		if frontBytes(t, res) != want {
			t.Fatal("doubly interrupted island run changed the front")
		}
	})
}

// TestIslandMigrationEveryZeroDegrades pins the compatibility contract:
// island knobs with MigrationEvery=0 (or a single island) run exactly
// today's single-population engine, byte for byte.
func TestIslandMigrationEveryZeroDegrades(t *testing.T) {
	inst := sobelInstance()
	plain, err := FcCLR(inst, smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	want := frontBytes(t, plain)
	cases := []struct {
		name                     string
		islands, every, migrants int
	}{
		{"migration-every-zero", 4, 0, 2},
		{"single-island", 1, 3, 2},
		{"zero-islands", 0, 3, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg(4)
			cfg.Islands = tc.islands
			cfg.MigrationEvery = tc.every
			cfg.Migrants = tc.migrants
			res, err := FcCLR(inst, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if frontBytes(t, res) != want {
				t.Fatal("degraded island config diverged from single-population run")
			}
			if res.Evaluations != plain.Evaluations {
				t.Fatalf("evaluations %d != %d", res.Evaluations, plain.Evaluations)
			}
		})
	}
}

// TestIslandUplift is the quality half of the acceptance contract: at
// equal evaluation budgets, the island model's mean hypervolume over a
// fixed seed set must be at least the single population's, on both the
// paper's sobel application and a synthetic graph. The mean over several
// seeds is the honest form of the claim — individual seeds are noisy in
// both directions, and averaging is deterministic (every run is seeded),
// so this never flakes.
func TestIslandUplift(t *testing.T) {
	cases := []struct {
		name string
		inst *Instance
	}{
		{"sobel", sobelInstance()},
		{"synthetic", synInstance(10, 5)},
	}
	seeds := []int64{1, 2, 3, 4, 5}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			meanRel := 0.0
			for _, seed := range seeds {
				cfg := RunConfig{Pop: 32, Gens: 24, Seed: seed}
				single, err := FcCLR(tc.inst, cfg)
				if err != nil {
					t.Fatal(err)
				}
				icfg := cfg
				icfg.Islands = 2
				icfg.MigrationEvery = 2
				icfg.Migrants = 2
				island, err := FcCLR(tc.inst, icfg)
				if err != nil {
					t.Fatal(err)
				}
				if island.Evaluations != single.Evaluations {
					t.Fatalf("seed %d: budgets diverged: island %d vs single %d",
						seed, island.Evaluations, single.Evaluations)
				}
				so, io := single.ObjectiveMatrix(), island.ObjectiveMatrix()
				ref := pareto.ReferencePoint(0.05, so, io)
				hvSingle := pareto.Hypervolume(so, ref)
				hvIsland := pareto.Hypervolume(io, ref)
				rel := (hvIsland - hvSingle) / hvSingle
				meanRel += rel / float64(len(seeds))
				t.Logf("seed %d: islands %.6g vs single %.6g (%+.1f%%) at %d evaluations",
					seed, hvIsland, hvSingle, 100*rel, island.Evaluations)
			}
			if meanRel < 0 {
				t.Fatalf("mean island hypervolume uplift %.2f%% < 0 at equal budgets", 100*meanRel)
			}
			t.Logf("mean uplift over %d seeds: %+.1f%%", len(seeds), 100*meanRel)
		})
	}
}

// TestIslandRequiresNSGA2 pins the engine restriction.
func TestIslandRequiresNSGA2(t *testing.T) {
	inst := sobelInstance()
	cfg := islandCfg(1)
	cfg.Engine = MOEAD
	if _, err := FcCLR(inst, cfg); err == nil || !strings.Contains(err.Error(), "NSGA-II") {
		t.Fatalf("MOEA/D island run not rejected: %v", err)
	}
}

// TestIslandRejectsPlateau pins the island/plateau exclusion: an
// early-stopping island would strand its peers at the epoch barrier.
func TestIslandRejectsPlateau(t *testing.T) {
	inst := sobelInstance()
	cfg := islandCfg(1)
	cfg.TerminateOnPlateau = true
	if _, err := FcCLR(inst, cfg); err == nil || !strings.Contains(err.Error(), "plateau") {
		t.Fatalf("island run with plateau termination not rejected: %v", err)
	}
}

// TestIslandStageKeys pins the checkpoint key derivation other layers
// (service stores, debugging tools) rely on.
func TestIslandStageKeys(t *testing.T) {
	if got := IslandStage("fcclr", 3); got != "fcclr/island3" {
		t.Fatalf("IslandStage = %q", got)
	}
}

// TestIslandProposedEndToEnd runs the two-stage Proposed strategy in
// island mode: both stages split into islands, checkpoints key per stage
// and island, and the run stays deterministic.
func TestIslandProposedEndToEnd(t *testing.T) {
	inst := sobelInstance()
	flib := filteredLib(t, inst)
	cfg := islandCfg(6)
	cfg.Gens = 8

	ref, err := Proposed(inst, cfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	want := frontBytes(t, ref)

	ck := newMemCheckpointer()
	ctx, cancel := context.WithCancel(context.Background())
	icfg := cfg
	icfg.Ctx = ctx
	icfg.Checkpoint = ck
	icfg.CheckpointEvery = 2
	icfg.Progress = func(ev ProgressEvent) {
		if ev.Stage == "fcclr" && ev.Generation == 4 {
			cancel()
		}
	}
	if _, err := Proposed(inst, icfg, flib); err == nil {
		t.Fatal("interrupted island Proposed returned no error")
	}
	if ck.ResumeFront("pfclr") == nil {
		t.Fatal("completed pfclr stage front missing")
	}
	rcfg := cfg
	rcfg.Checkpoint = ck
	res, err := Proposed(inst, rcfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	if frontBytes(t, res) != want {
		t.Fatal("resumed island Proposed changed the front")
	}
}
