package core

import (
	"math"

	"repro/internal/moea"
	"repro/internal/schedule"
)

// Checkpointer is the durability hook of a strategy run. Strategies are
// sequences (or parallel sets) of named GA stages; the checkpointer
// receives mid-stage engine snapshots and completed stage fronts, and on a
// rerun of the same spec hands them back so the run continues where it
// stopped instead of restarting. Implementations must be safe for
// concurrent use: strategies with parallel stages (Agnostic) save from
// several goroutines.
//
// Determinism contract: stage names are unique within one strategy run,
// every stage is deterministic given its RunConfig, and moea checkpoints
// restore bit-exact state — so a run resumed through a Checkpointer yields
// a byte-identical front to an uninterrupted run of the same spec.
type Checkpointer interface {
	// SaveStage persists a mid-stage engine snapshot.
	SaveStage(stage string, cp *moea.Checkpoint)
	// SaveFront persists a completed stage's front.
	SaveFront(stage string, fs *FrontSnapshot)
	// ResumeStage returns the saved mid-stage snapshot, or nil.
	ResumeStage(stage string) *moea.Checkpoint
	// ResumeFront returns the saved front of a completed stage, or nil.
	ResumeFront(stage string) *FrontSnapshot
}

// FrontSnapshot is a completed stage's front in durable form: objective
// vectors as float bit patterns plus the full genomes. QoS metrics do not
// travel — decoding a genome is deterministic, so they are recomputed
// bit-exactly on restore.
type FrontSnapshot struct {
	Evaluations int                  `json:"evaluations"`
	Points      []FrontSnapshotPoint `json:"points"`
}

// FrontSnapshotPoint is one durable Pareto point.
type FrontSnapshotPoint struct {
	Objectives []uint64    `json:"obj_bits"`
	Order      []int       `json:"order"`
	Genes      []moea.Gene `json:"genes"`
}

// SnapshotFront converts a strategy-produced front (whose points carry
// genomes) into durable form.
func SnapshotFront(f *Front) *FrontSnapshot {
	out := &FrontSnapshot{Evaluations: f.Evaluations, Points: make([]FrontSnapshotPoint, len(f.Points))}
	for i, p := range f.Points {
		fp := FrontSnapshotPoint{
			Objectives: make([]uint64, len(p.Objectives)),
			Order:      append([]int(nil), p.Genome.Order...),
			Genes:      append([]moea.Gene(nil), p.Genome.Genes...),
		}
		for j, v := range p.Objectives {
			fp.Objectives[j] = math.Float64bits(v)
		}
		out.Points[i] = fp
	}
	return out
}

// restoreFront rebuilds a live front from its snapshot, re-deriving each
// point's QoS metrics through the stage's decoder (archive order is
// preserved, so the restored front is byte-identical to the one saved).
func restoreFront(fs *FrontSnapshot, decode func(*moea.Genome) *schedule.Result) *Front {
	out := &Front{Evaluations: fs.Evaluations, Points: make([]Point, len(fs.Points))}
	for i, fp := range fs.Points {
		objs := make([]float64, len(fp.Objectives))
		for j, b := range fp.Objectives {
			objs[j] = math.Float64frombits(b)
		}
		g := &moea.Genome{
			Order: append([]int(nil), fp.Order...),
			Genes: append([]moea.Gene(nil), fp.Genes...),
		}
		out.Points[i] = Point{Objectives: objs, QoS: decode(g), Genome: g}
	}
	return out
}

// DefaultCheckpointEvery is the generation period of durable snapshots
// when RunConfig enables checkpointing without choosing one.
const DefaultCheckpointEvery = 5
