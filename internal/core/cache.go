package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/platform"
	"repro/internal/relmodel"
)

// metricsShards is the shard count of the instance-level metric cache. 64
// shards keep lock contention negligible at any realistic worker count
// while the per-shard maps stay small enough to scan for stats.
const metricsShards = 64

// metricsEntry is a single-flight cache slot: the first goroutine to claim
// a key computes the metrics inside once; concurrent requesters for the
// same key block on that one computation instead of duplicating the Markov
// analysis.
type metricsEntry struct {
	once sync.Once
	m    relmodel.Metrics
}

type metricsShard struct {
	mu sync.Mutex
	m  map[metricsKey]*metricsEntry
}

// metricsCache memoizes task-level Markov evaluations per instance. It is
// shared by every strategy run (fcCLR, the layer-restricted baselines,
// proposed) exploring the same instance, so identical metricsKey entries
// are computed once per instance rather than once per run.
type metricsCache struct {
	shards [metricsShards]metricsShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// hash mixes the key fields FNV-1a style to pick a shard.
func (k metricsKey) hash() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range [...]int{k.taskType, k.impl, k.asg.Mode, k.asg.HW, k.asg.SSW, k.asg.ASW} {
		h ^= uint64(v)
		h *= prime64
	}
	return h
}

// lookup returns the metrics for key, calling compute at most once per key
// for the lifetime of the cache.
func (c *metricsCache) lookup(key metricsKey, compute func() relmodel.Metrics) relmodel.Metrics {
	s := &c.shards[key.hash()%metricsShards]
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		if s.m == nil {
			s.m = make(map[metricsKey]*metricsEntry)
		}
		e = &metricsEntry{}
		s.m[key] = e
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.m = compute() })
	return e.m
}

// CacheStats reports the state of an instance's shared Markov-metric cache.
type CacheStats struct {
	// Hits counts lookups that found an existing entry (including ones that
	// briefly waited on an in-flight computation).
	Hits uint64
	// Misses counts lookups that created the entry and ran the computation.
	Misses uint64
	// Entries is the number of distinct (task type, impl, assignment) keys.
	Entries int
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *metricsCache) stats() CacheStats {
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// metricsInitMu guards lazy creation of per-instance caches. Instance is a
// plain exported struct built by composite literals all over the tree, so
// the cache field cannot carry its own sync primitive without making
// Instance uncopyable (scenario scaling copies it by value).
var metricsInitMu sync.Mutex

// sharedMetrics returns the instance's metric cache, creating it on first
// use. Every problem built on this instance shares the returned cache.
func (in *Instance) sharedMetrics() *metricsCache {
	metricsInitMu.Lock()
	defer metricsInitMu.Unlock()
	if in.metrics == nil {
		in.metrics = &metricsCache{}
	}
	return in.metrics
}

// MetricsCacheStats reports hit/miss counters and size of the instance's
// shared Markov-metric cache (creating the cache if needed).
func (in *Instance) MetricsCacheStats() CacheStats {
	return in.sharedMetrics().stats()
}

// WithPlatform returns a copy of the instance bound to a different platform
// and fresh metric/fitness caches. Task metrics depend on the PE type's
// fault rates and DVFS modes, so a derived environment (e.g. a scenario
// with scaled SEU rates) must not share cached values with its parent.
func (in *Instance) WithPlatform(p *platform.Platform) *Instance {
	out := *in
	out.Platform = p
	out.metrics = nil
	out.fitness = nil
	return &out
}
