package core

import (
	"sync/atomic"

	"repro/internal/moea"
	"repro/internal/relmodel"
)

// accelCounters accumulates process-wide evaluation-acceleration activity:
// how often the delta evaluator reused its parent outright, replayed a
// schedule prefix, or fell back to a full run; how many per-task metric
// decodes were skipped; and how many cache entries batch preparation
// warmed. They are monotone totals across all instances, like the
// fitness-cache counters.
var accelCounters struct {
	deltaParentReuse atomic.Uint64
	deltaPrefixRuns  atomic.Uint64
	deltaFullRuns    atomic.Uint64
	metricsReused    atomic.Uint64
	batchWarmed      atomic.Uint64
}

// AccelStats is a snapshot of the process-wide evaluation-acceleration
// counters: the delta-evaluation, batching and surrogate-screening
// machinery of the DSE hot path.
type AccelStats struct {
	// DeltaParentReuse counts evaluations answered by the parent's result
	// because the child decoded to identical schedule inputs.
	DeltaParentReuse uint64
	// DeltaPrefixRuns counts schedule evaluations that replayed a parent
	// prefix; DeltaFullRuns counts full schedule runs (initial populations,
	// changed orders, missing replay state).
	DeltaPrefixRuns, DeltaFullRuns uint64
	// MetricsReused counts per-task metric decodes skipped because the gene
	// matched the parent's.
	MetricsReused uint64
	// BatchWarmed counts metric-cache entries warmed by generation batch
	// preparation.
	BatchWarmed uint64
	// ProxyEvals / ScreenedOut are the surrogate screening totals (see
	// moea.SurrogateTotals).
	ProxyEvals, ScreenedOut uint64
	// PairedSolves / SoloSolves count reliability chain analyses that did /
	// did not share one factorization between the timing and functional
	// chains (see relmodel.PairSolveTotals).
	PairedSolves, SoloSolves uint64
}

// AccelTotals aggregates the process-wide evaluation-acceleration counters
// across the core, moea and relmodel layers — the source of clrearlyd's
// /metrics eval_accel block and the experiment harness's stderr summary.
func AccelTotals() AccelStats {
	sur := moea.SurrogateTotals()
	pair := relmodel.PairSolveTotals()
	return AccelStats{
		DeltaParentReuse: accelCounters.deltaParentReuse.Load(),
		DeltaPrefixRuns:  accelCounters.deltaPrefixRuns.Load(),
		DeltaFullRuns:    accelCounters.deltaFullRuns.Load(),
		MetricsReused:    accelCounters.metricsReused.Load(),
		BatchWarmed:      accelCounters.batchWarmed.Load(),
		ProxyEvals:       sur.Proxy,
		ScreenedOut:      sur.Screened,
		PairedSolves:     pair.Paired,
		SoloSolves:       pair.Solo,
	}
}

// SelectionTotals exposes the engine-level selection-path and
// plateau-convergence counters to the service layers — the source of the
// daemon's and gateway's /metrics selection and convergence blocks.
func SelectionTotals() moea.SelectionStats {
	return moea.SelectionTotals()
}
