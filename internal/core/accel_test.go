package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/pareto"
)

// runMethod dispatches one named strategy under cfg, returning the union
// front (the Agnostic per-layer map is dropped).
func runMethod(t *testing.T, method string, inst *Instance, cfg RunConfig) *Front {
	t.Helper()
	var (
		front *Front
		err   error
	)
	switch method {
	case "fcclr":
		front, err = FcCLR(inst, cfg)
	case "pfclr":
		front, err = PfCLR(inst, cfg, filteredLib(t, inst))
	case "proposed":
		front, err = Proposed(inst, cfg, filteredLib(t, inst))
	case "agnostic":
		front, _, err = Agnostic(inst, cfg)
	default:
		t.Fatalf("unknown method %q", method)
	}
	if err != nil {
		t.Fatal(err)
	}
	return front
}

// TestDeltaOnOffByteIdenticalFronts is the tentpole exactness contract at
// the strategy level: every method on both engines at several seeds must
// produce a bit-identical front whether offspring are evaluated
// incrementally (the default) or from scratch.
func TestDeltaOnOffByteIdenticalFronts(t *testing.T) {
	inst := sobelInstance()
	for _, method := range []string{"fcclr", "pfclr", "proposed", "agnostic"} {
		for _, engine := range []Engine{NSGA2, MOEAD} {
			for _, seed := range []int64{1, 17} {
				t.Run(fmt.Sprintf("%s/%s/seed%d", method, engine, seed), func(t *testing.T) {
					cfg := RunConfig{Pop: 20, Gens: 8, Seed: seed, Engine: engine}
					on := frontBytes(t, runMethod(t, method, inst, cfg))
					cfg.DisableDelta = true
					off := frontBytes(t, runMethod(t, method, inst, cfg))
					if on != off {
						t.Fatal("delta evaluation changed the front")
					}
				})
			}
		}
	}
}

// TestDeltaOnOffIdenticalOnSynthetic repeats the contract on a larger
// synthetic instance where communication volumes and memory footprints are
// non-trivial, so prefix replay and suffix recompute both carry weight.
func TestDeltaOnOffIdenticalOnSynthetic(t *testing.T) {
	inst := synInstance(18, 23)
	inst.Comm.StartupUS = 4
	inst.Comm.PerKBUS = 0.3
	cfg := RunConfig{Pop: 24, Gens: 10, Seed: 23}
	on := frontBytes(t, runMethod(t, "proposed", inst, cfg))
	cfg.DisableDelta = true
	off := frontBytes(t, runMethod(t, "proposed", inst, cfg))
	if on != off {
		t.Fatal("delta evaluation changed the synthetic-instance front")
	}
}

// TestDeltaResumeByteIdentical interrupts a delta-evaluated Proposed run
// mid-stage and checks the resumed run still matches the delta-off
// reference bit-exactly — checkpointed parents carry no delta state, so
// the first post-resume generation silently falls back to full evaluation
// and must land on the same floats.
func TestDeltaResumeByteIdentical(t *testing.T) {
	inst := sobelInstance()
	flib := filteredLib(t, inst)
	cfg := RunConfig{Pop: 24, Gens: 10, Seed: 3}

	refCfg := cfg
	refCfg.DisableDelta = true
	ref, err := Proposed(inst, refCfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	want := frontBytes(t, ref)

	ck := newMemCheckpointer()
	ctx, cancel := context.WithCancel(context.Background())
	icfg := cfg
	icfg.Ctx = ctx
	icfg.Checkpoint = ck
	icfg.CheckpointEvery = 2
	icfg.Progress = func(ev ProgressEvent) {
		if ev.Stage == "fcclr" && ev.Generation == 5 {
			cancel()
		}
	}
	if _, err := Proposed(inst, icfg, flib); err == nil {
		t.Fatal("interrupted run returned no error")
	}

	rcfg := cfg
	rcfg.Checkpoint = ck
	res, err := Proposed(inst, rcfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	if got := frontBytes(t, res); got != want {
		t.Fatal("delta run resumed from checkpoint differs from delta-off reference")
	}
}

// frontHypervolumes measures both fronts against one shared reference
// point dominated by every point of either front, so the volumes are
// directly comparable.
func frontHypervolumes(a, b *Front) (hvA, hvB float64) {
	if len(a.Points) == 0 || len(b.Points) == 0 {
		return 0, 0
	}
	m := len(a.Points[0].Objectives)
	ref := make([]float64, m)
	collect := func(f *Front) [][]float64 {
		pts := make([][]float64, len(f.Points))
		for i, p := range f.Points {
			pts[i] = p.Objectives
			for j, v := range p.Objectives {
				if v > ref[j] {
					ref[j] = v
				}
			}
		}
		return pts
	}
	ptsA, ptsB := collect(a), collect(b)
	for j := range ref {
		ref[j] = ref[j]*1.1 + 1
	}
	return pareto.Hypervolume(ptsA, ref), pareto.Hypervolume(ptsB, ref)
}

// TestSurrogateParity is the screening quality contract across random
// instances, compared at an equal full-evaluation budget: with fraction
// 0.5 a screened run over 2G generations spends exactly as many full
// evaluations as an exact run over G, and must then hold at least 90% of
// its hypervolume. Every reported point must be exactly evaluated
// (objectives consistent with its QoS).
func TestSurrogateParity(t *testing.T) {
	for _, tc := range []struct {
		tasks int
		seed  int64
	}{
		{10, 31}, {14, 5}, {18, 77},
	} {
		t.Run(fmt.Sprintf("tasks%d/seed%d", tc.tasks, tc.seed), func(t *testing.T) {
			inst := synInstance(tc.tasks, tc.seed)
			cfg := RunConfig{Pop: 24, Gens: 12, Seed: tc.seed}
			exact, err := FcCLR(inst, cfg)
			if err != nil {
				t.Fatal(err)
			}
			scfg := cfg
			scfg.Gens = 2 * cfg.Gens
			scfg.SurrogateFraction = 0.5
			screened, err := FcCLR(inst, scfg)
			if err != nil {
				t.Fatal(err)
			}
			// The final exact pass over surviving approximate solutions may
			// add up to one extra population of evaluations.
			if screened.Evaluations > exact.Evaluations+cfg.Pop {
				t.Fatalf("screened run overspent: %d full evaluations vs %d exact",
					screened.Evaluations, exact.Evaluations)
			}
			for _, p := range screened.Points {
				if p.Objectives[0] != p.QoS.MakespanUS {
					t.Fatal("screened front contains a non-exact point")
				}
			}
			hvExact, hvScreened := frontHypervolumes(exact, screened)
			if hvExact > 0 && hvScreened < 0.9*hvExact {
				t.Fatalf("screened hypervolume %.4g below 90%% of exact %.4g", hvScreened, hvExact)
			}
		})
	}
}

// TestSurrogateRequiresNSGA2 pins the engine gate at the core layer.
func TestSurrogateRequiresNSGA2(t *testing.T) {
	inst := sobelInstance()
	cfg := smallCfg(3)
	cfg.Engine = MOEAD
	cfg.SurrogateFraction = 0.5
	if _, err := FcCLR(inst, cfg); err == nil {
		t.Fatal("surrogate screening on MOEA/D accepted")
	}
}

// TestAccelCountersMove checks the process-wide acceleration counters
// actually advance under a delta-evaluated run.
func TestAccelCountersMove(t *testing.T) {
	before := AccelTotals()
	inst := sobelInstance()
	if _, err := FcCLR(inst, smallCfg(91)); err != nil {
		t.Fatal(err)
	}
	after := AccelTotals()
	if after.DeltaPrefixRuns+after.DeltaParentReuse == before.DeltaPrefixRuns+before.DeltaParentReuse {
		t.Fatal("delta counters did not advance")
	}
	scfg := smallCfg(92)
	scfg.SurrogateFraction = 0.5
	if _, err := FcCLR(inst, scfg); err != nil {
		t.Fatal(err)
	}
	final := AccelTotals()
	if final.ProxyEvals == after.ProxyEvals || final.ScreenedOut == after.ScreenedOut {
		t.Fatal("surrogate counters did not advance")
	}
}
