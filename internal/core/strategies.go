package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/moea"
	"repro/internal/pareto"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/sweep"
	"repro/internal/tdse"
)

// Point is one design point of a resulting Pareto front: its objective
// vector, the full system-level QoS metrics and the genome that produced it.
type Point struct {
	Objectives []float64
	QoS        *schedule.Result
	Genome     *moea.Genome
}

// Front is the outcome of one DSE run.
type Front struct {
	Points []Point
	// Evaluations counts fitness evaluations spent producing the front.
	Evaluations int
}

// ObjectiveMatrix returns the objective vectors, for hypervolume analysis.
func (f *Front) ObjectiveMatrix() [][]float64 {
	out := make([][]float64, len(f.Points))
	for i, p := range f.Points {
		out[i] = p.Objectives
	}
	return out
}

// Engine selects the MOEA family driving the search.
type Engine int

const (
	// NSGA2 is the non-dominated-sorting GA (the default).
	NSGA2 Engine = iota
	// MOEAD is the decomposition-based alternative.
	MOEAD
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case NSGA2:
		return "NSGA-II"
	case MOEAD:
		return "MOEA/D"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// RunConfig controls one GA-based DSE run.
type RunConfig struct {
	Pop, Gens int
	Seed      int64
	// Workers bounds parallel fitness evaluation. 0 (the default) draws
	// workers from the process-wide CPU-token budget shared with the sweep
	// engine; an explicit positive value forces that worker count.
	Workers int
	// Engine selects the MOEA family (default NSGA2).
	Engine Engine
	// Jobs bounds strategy-internal run-level parallelism (the per-layer
	// runs of Agnostic); ≤ 0 means GOMAXPROCS. Results are identical for
	// every value — per-run seeds are derived from Seed, never from
	// scheduling.
	Jobs int
	// Ctx, when non-nil, cancels the run between GA generations: the
	// strategy stops within one generation of cancellation and returns
	// ctx.Err() (possibly wrapped with the failing stage). Cancellation
	// never perturbs the RNG stream, so an uncancelled run is identical
	// with or without Ctx.
	Ctx context.Context
	// Progress, when non-nil, receives one event per completed GA
	// generation, labeled with the stage that produced it ("pfclr",
	// "fcclr", "mapping", or a Layer name). Strategies that run stages
	// concurrently (Agnostic with Jobs ≠ 1) invoke it from several
	// goroutines, so handlers must be safe for concurrent use.
	Progress func(ProgressEvent)
	// Checkpoint, when non-nil, makes the run durable: every
	// CheckpointEvery generations each stage hands a resumable engine
	// snapshot to SaveStage, completed stage fronts go to SaveFront, and a
	// cancelled stage snapshots its last generation boundary before
	// returning. A later run of the same spec with the same Checkpointer
	// state skips completed stages and resumes the interrupted one,
	// producing a byte-identical final front.
	Checkpoint Checkpointer
	// CheckpointEvery is the snapshot period in generations (default
	// DefaultCheckpointEvery; meaningful only with Checkpoint set).
	CheckpointEvery int
	// DisableDelta switches off incremental (delta) evaluation. Delta
	// evaluation is exact — fronts are byte-identical either way — so this
	// is a measurement/escape hatch, not a fidelity knob.
	DisableDelta bool
	// SurrogateFraction, when > 0, enables surrogate screening on NSGA-II
	// stages: per generation only this fraction of the population budget is
	// fully evaluated, chosen by the problem's cheap proxy ranking. The
	// final front is still exact (see moea.SurrogateParams). Must be in
	// (0,1]; 0 disables screening.
	SurrogateFraction float64
	// Islands, when > 1 together with MigrationEvery ≥ 1, splits each GA
	// stage into that many cooperating islands (NSGA-II only): the
	// population divides across islands, per-island seeds derive from
	// Seed, and elite migrants travel a fixed ring every MigrationEvery
	// generations. The merged front is byte-identical for a fixed
	// (Seed, Islands, MigrationEvery, Migrants) regardless of worker
	// placement or restarts. Islands ≤ 1 — or MigrationEvery = 0 — runs
	// the plain single-population engine, byte-identical to a config
	// without island fields.
	Islands int
	// MigrationEvery is the island migration period in generations.
	MigrationEvery int
	// Migrants is the number of elite migrants exchanged per epoch
	// (default 2 when island mode is active).
	Migrants int
	// TerminateOnPlateau, when set, lets every GA stage stop early once its
	// archive hypervolume has plateaued (see moea.Params.TerminateOnPlateau).
	// Off by default — runs then exhaust their full generation budget and
	// remain byte-identical to configs without the knob. Incompatible with
	// island mode.
	TerminateOnPlateau bool
	// PlateauWindow / PlateauEps tune the plateau detector (0 = the moea
	// package defaults). Meaningful only with TerminateOnPlateau.
	PlateauWindow int
	PlateauEps    float64
}

// islandMode reports whether the config requests cooperative island
// evolution. MigrationEvery = 0 deliberately degrades to the plain
// single-population engine — the pinned compatibility contract.
func (c RunConfig) islandMode() bool { return c.Islands > 1 && c.MigrationEvery > 0 }

// ProgressEvent reports per-generation progress of one optimization stage
// of a strategy run.
type ProgressEvent struct {
	// Stage names the GA stage: "pfclr", "fcclr", "mapping" or a layer
	// name ("DVFS", "HWRel", "SSWRel", "ASWRel").
	Stage string
	// Generation counts completed generations within the stage (0 is the
	// evaluated initial population); Generations is the stage's budget.
	Generation, Generations int
	// Evaluations counts fitness evaluations spent in this stage so far.
	Evaluations int
	// ArchiveSize is the stage's current non-dominated archive size.
	ArchiveSize int
}

// DefaultRunConfig is a moderate budget suitable for the paper-scale
// experiments.
func DefaultRunConfig(seed int64) RunConfig {
	return RunConfig{Pop: 80, Gens: 60, Seed: seed}
}

// paramsFor builds the GA parameters for one named stage, threading the
// config's context and wrapping its progress callback with the stage label.
func (c RunConfig) paramsFor(stage string) moea.Params {
	p := moea.DefaultParams(c.Pop, c.Gens, c.Seed)
	p.Workers = c.Workers
	p.Ctx = c.Ctx
	p.DisableDelta = c.DisableDelta
	if c.SurrogateFraction > 0 {
		p.Surrogate = moea.SurrogateParams{Enabled: true, Fraction: c.SurrogateFraction}
	}
	if c.TerminateOnPlateau {
		p.TerminateOnPlateau = true
		p.PlateauWindow = c.PlateauWindow
		p.PlateauEps = c.PlateauEps
	}
	if c.Progress != nil {
		progress := c.Progress
		p.OnGeneration = func(g moea.GenerationInfo) {
			progress(ProgressEvent{
				Stage:       stage,
				Generation:  g.Generation,
				Generations: g.Generations,
				Evaluations: g.Evaluations,
				ArchiveSize: g.ArchiveSize,
			})
		}
	}
	return p
}

// runProblem executes the selected engine and decodes the archive front.
// With cfg.Checkpoint set, a stage whose front was already saved is
// restored without running, an interrupted stage resumes from its engine
// snapshot, and the completed front is saved for the next resume.
func runProblem(p moea.Problem, decode func(*moea.Genome) *schedule.Result, cfg RunConfig, seeds []*moea.Genome, stage string) (*Front, error) {
	if cfg.Checkpoint != nil {
		if fs := cfg.Checkpoint.ResumeFront(stage); fs != nil {
			return restoreFront(fs, decode), nil
		}
	}
	params := cfg.paramsFor(stage)
	var res *moea.Result
	var err error
	if cfg.islandMode() {
		if cfg.TerminateOnPlateau {
			return nil, fmt.Errorf("core: plateau termination is incompatible with island mode")
		}
		// Island mode checkpoints per island under derived stage keys;
		// the plain stage key only ever holds the completed front.
		res, err = runIslandStage(p, cfg, params, seeds, stage)
	} else {
		if cfg.Checkpoint != nil {
			params.Resume = cfg.Checkpoint.ResumeStage(stage)
			params.CheckpointEvery = cfg.CheckpointEvery
			if params.CheckpointEvery <= 0 {
				params.CheckpointEvery = DefaultCheckpointEvery
			}
			ck := cfg.Checkpoint
			params.OnCheckpoint = func(cp *moea.Checkpoint) { ck.SaveStage(stage, cp) }
		}
		switch cfg.Engine {
		case NSGA2:
			res, err = moea.Run(p, params, seeds)
		case MOEAD:
			res, err = moea.RunMOEAD(p, params, seeds)
		default:
			return nil, fmt.Errorf("core: unknown engine %d", int(cfg.Engine))
		}
	}
	if err != nil {
		return nil, err
	}
	front := &Front{Evaluations: res.Evaluations}
	for _, s := range res.Front {
		front.Points = append(front.Points, Point{
			Objectives: s.Objectives,
			QoS:        decode(s.Genome),
			Genome:     s.Genome,
		})
	}
	if cfg.Checkpoint != nil {
		cfg.Checkpoint.SaveFront(stage, SnapshotFront(front))
	}
	return front, nil
}

// FcCLR runs the problem-agnostic full-configuration CLR task mapping
// (§V.B.1): all CLR decisions are separate GA degrees of freedom.
func FcCLR(inst *Instance, cfg RunConfig) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p := newFCProblem(inst, allFree)
	return runProblem(p, p.decodeResult, cfg, nil, "fcclr")
}

// PfCLR runs the task-level-Pareto-filtered task mapping (§V.B.2) over the
// tDSE library flib.
func PfCLR(inst *Instance, cfg RunConfig, flib *tdse.Library) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := checkFilteredLibrary(inst, flib); err != nil {
		return nil, err
	}
	p := newPFProblem(inst, flib)
	return runProblem(p, p.decodeResult, cfg, nil, "pfclr")
}

// Proposed runs the paper's two-stage methodology (§V.B.3, Fig. 4(b)):
// a pfCLR run prunes the space, its Pareto front is re-encoded into
// full-configuration genomes, and a seeded fcCLR run refines it.
// The returned front is the fcCLR stage's archive (which starts from, and
// therefore can only improve on, the pfCLR seeds).
func Proposed(inst *Instance, cfg RunConfig, flib *tdse.Library) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := checkFilteredLibrary(inst, flib); err != nil {
		return nil, err
	}
	pfStage, err := PfCLR(inst, cfg, flib)
	if err != nil {
		return nil, fmt.Errorf("core: pfCLR stage: %w", err)
	}
	return ProposedFrom(inst, cfg, flib, pfStage)
}

// ProposedFrom runs only the second stage of the proposed methodology: the
// fcCLR search seeded with an existing pfCLR front. Because the seeds
// re-encode exactly (same QoS) and enter the archive, the returned front
// hypervolume-dominates or equals the pfCLR front it started from.
func ProposedFrom(inst *Instance, cfg RunConfig, flib *tdse.Library, pfStage *Front) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := checkFilteredLibrary(inst, flib); err != nil {
		return nil, err
	}
	seeds, err := reencodeSeeds(inst, flib, pfStage)
	if err != nil {
		return nil, err
	}
	fcCfg := cfg
	fcCfg.Seed = cfg.Seed + 1
	p := newFCProblem(inst, allFree)
	front, err := runProblem(p, p.decodeResult, fcCfg, seeds, "fcclr")
	if err != nil {
		return nil, fmt.Errorf("core: seeded fcCLR stage: %w", err)
	}
	// The method's result is the non-dominated union of both stages; this
	// also covers pfCLR points whose seeds were truncated by the
	// population size. The pfCLR points are re-decoded through the
	// full-configuration problem so the merged front is internally
	// consistent even if the filtered library's cached metrics diverge
	// from the instance (e.g. a different operating environment).
	union := append([]Point{}, front.Points...)
	for _, seed := range seeds {
		q := p.decodeResult(seed)
		union = append(union, Point{
			Objectives: objectiveVector(q, inst.objectives()),
			QoS:        q,
			Genome:     seed,
		})
	}
	objs := make([][]float64, len(union))
	for i, pt := range union {
		objs[i] = pt.Objectives
	}
	merged := &Front{Evaluations: front.Evaluations + pfStage.Evaluations}
	for _, i := range pareto.Filter(objs) {
		merged.Points = append(merged.Points, union[i])
	}
	return merged, nil
}

// reencodeSeeds converts pfCLR front genomes into fcCLR genomes: the chosen
// candidate's base implementation index and CLR assignment become explicit
// gene fields (the guided-search hand-off of Fig. 4(b)).
func reencodeSeeds(inst *Instance, flib *tdse.Library, pf *Front) ([]*moea.Genome, error) {
	// Per task type: base implementation name → index in the full library.
	implIndex := make([]map[string]int, inst.Lib.NumTypes())
	for tt := 0; tt < inst.Lib.NumTypes(); tt++ {
		implIndex[tt] = map[string]int{}
		for i, im := range inst.Lib.Impls(tt) {
			implIndex[tt][im.Name] = i
		}
	}
	compat := compatiblePEs(inst.Platform)
	var seeds []*moea.Genome
	for _, pt := range pf.Points {
		g := pt.Genome.Clone()
		for t := 0; t < inst.Graph.NumTasks(); t++ {
			tt := inst.Graph.Task(t).Type
			cands := flib.Impls(tt)
			c := cands[mod(g.Genes[t].Impl, len(cands))]
			base, ok := implIndex[tt][c.Base.Name]
			if !ok {
				return nil, fmt.Errorf("core: candidate %q not found in base library", c.Base.Name)
			}
			peList := compat[c.Base.PETypeIndex]
			g.Genes[t] = moea.Gene{
				Impl: base,
				PE:   mod(g.Genes[t].PE, len(peList)),
				Mode: c.Assignment.Mode,
				HW:   c.Assignment.HW,
				SSW:  c.Assignment.SSW,
				ASW:  c.Assignment.ASW,
			}
		}
		seeds = append(seeds, g)
	}
	return seeds, nil
}

func checkFilteredLibrary(inst *Instance, flib *tdse.Library) error {
	if flib == nil {
		return fmt.Errorf("core: nil filtered library")
	}
	if len(flib.ByType) < inst.Graph.NumTypes() {
		return fmt.Errorf("core: filtered library covers %d types, application needs %d",
			len(flib.ByType), inst.Graph.NumTypes())
	}
	for tt := 0; tt < inst.Graph.NumTypes(); tt++ {
		if len(flib.ByType[tt]) == 0 {
			return fmt.Errorf("core: filtered library has no implementations for task type %d", tt)
		}
	}
	return nil
}

// Layer identifies a single degree of freedom for the single-layer
// baselines of §VI.C.1.
type Layer int

const (
	// LayerDVFS frees only the DVFS mode.
	LayerDVFS Layer = iota
	// LayerHW frees only the hardware spatial-redundancy method.
	LayerHW
	// LayerSSW frees only the system-software temporal-redundancy method.
	LayerSSW
	// LayerASW frees only the application-software information-redundancy
	// method.
	LayerASW
)

// String names the layer as in Fig. 7's legend.
func (l Layer) String() string {
	switch l {
	case LayerDVFS:
		return "DVFS"
	case LayerHW:
		return "HWRel"
	case LayerSSW:
		return "SSWRel"
	case LayerASW:
		return "ASWRel"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Layers lists the four single-layer baselines.
func Layers() []Layer { return []Layer{LayerDVFS, LayerHW, LayerSSW, LayerASW} }

// MappingOnly optimizes plain task mapping (Fig. 1(a): task-to-PE binding,
// scheduling and implementation choice) with no reliability methods and
// nominal DVFS — the "task-mapping only" space of Eq. 5, and the baseline
// design the single-layer optimizations start from.
func MappingOnly(inst *Instance, cfg RunConfig) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p := newFCProblem(inst, layerRestriction{})
	return runProblem(p, p.decodeResult, cfg, nil, "mapping")
}

// SingleLayer models the traditional other-layer-agnostic design flow: the
// optimization keeps the ordinary task-mapping decisions (PE binding,
// scheduling, implementation choice) but enables only one reliability layer
// as a degree of freedom. This is the per-layer run whose merged results
// form the Agnostic comparison of Fig. 7 / TABLE V.
func SingleLayer(inst *Instance, cfg RunConfig, layer Layer) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	r, err := restrictionFor(layer)
	if err != nil {
		return nil, err
	}
	p := newFCProblem(inst, r)
	return runProblem(p, p.decodeResult, cfg, nil, layer.String())
}

// SingleLayerFixed explores one reliability layer in the strict Π C_t
// space of Eq. 5 ("cross-layer-reliability only"): task mapping, scheduling
// and implementation choice are pinned to a performance-optimal baseline
// design (the minimum-makespan point of a MappingOnly run), and only the
// selected layer's configuration varies per task.
func SingleLayerFixed(inst *Instance, cfg RunConfig, layer Layer) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	baseline, evals, err := mappingBaseline(inst, cfg)
	if err != nil {
		return nil, err
	}
	front, err := singleLayerFrom(inst, cfg, layer, baseline)
	if err != nil {
		return nil, err
	}
	front.Evaluations += evals
	return front, nil
}

func restrictionFor(layer Layer) (layerRestriction, error) {
	var r layerRestriction
	switch layer {
	case LayerDVFS:
		r.freeModes = true
	case LayerHW:
		r.freeHW = true
	case LayerSSW:
		r.freeSSW = true
	case LayerASW:
		r.freeASW = true
	default:
		return r, fmt.Errorf("core: unknown layer %d", int(layer))
	}
	return r, nil
}

// mappingBaseline runs MappingOnly and returns its fastest design point.
func mappingBaseline(inst *Instance, cfg RunConfig) (Point, int, error) {
	base, err := MappingOnly(inst, cfg)
	if err != nil {
		return Point{}, 0, fmt.Errorf("core: mapping-only baseline: %w", err)
	}
	if len(base.Points) == 0 {
		return Point{}, 0, fmt.Errorf("core: mapping-only baseline produced no feasible design")
	}
	baseline := base.Points[0]
	for _, p := range base.Points {
		if p.QoS.MakespanUS < baseline.QoS.MakespanUS {
			baseline = p
		}
	}
	return baseline, base.Evaluations, nil
}

// singleLayerFrom explores one layer's configurations on a fixed baseline
// design.
func singleLayerFrom(inst *Instance, cfg RunConfig, layer Layer, baseline Point) (*Front, error) {
	r, err := restrictionFor(layer)
	if err != nil {
		return nil, err
	}
	r.fixedGenes = baseline.Genome.Genes
	p := newFCProblem(inst, r)
	params := cfg.paramsFor(layer.String())
	params.Seed = cfg.Seed + 7
	params.FixedOrder = baseline.Genome.Order
	res, err := moea.Run(p, params, nil)
	if err != nil {
		return nil, err
	}
	front := &Front{Evaluations: res.Evaluations}
	for _, s := range res.Front {
		front.Points = append(front.Points, Point{
			Objectives: s.Objectives,
			QoS:        p.decodeResult(s.Genome),
			Genome:     s.Genome,
		})
	}
	return front, nil
}

// Agnostic runs every single-layer optimization separately and merges the
// dominant points of their fronts — the "other-layer-agnostic" traditional
// approach the CLR methodology is compared against in Fig. 7 / TABLE V.
// It returns the merged front and the per-layer fronts (for plotting).
func Agnostic(inst *Instance, cfg RunConfig) (*Front, map[Layer]*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, err
	}
	// The four per-layer runs are independent; run them as sweep cells.
	// Per-layer seeds derive from cfg.Seed and results merge in layer
	// order, so the merged front is identical for any Jobs value.
	fronts, err := sweep.Map(cfg.Jobs, Layers(), func(i int, layer Layer) (*Front, error) {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000
		f, err := SingleLayer(inst, c, layer)
		if err != nil {
			return nil, fmt.Errorf("core: %v-only run: %w", layer, err)
		}
		return f, nil
	})
	if err != nil {
		return nil, nil, err
	}
	perLayer := make(map[Layer]*Front, 4)
	for i, layer := range Layers() {
		perLayer[layer] = fronts[i]
	}
	return MergeFronts(fronts...), perLayer, nil
}

// MergeFronts concatenates the points of several fronts in argument order,
// keeps the dominant (non-dominated) ones and sums the evaluation counts —
// the merge step that turns the four single-layer fronts into the Agnostic
// baseline. The filter preserves concatenation order, so the merged front
// is identical whether the inputs were computed in-process or rebuilt from
// their wire forms by a distributed coordinator.
func MergeFronts(fronts ...*Front) *Front {
	var all []Point
	evals := 0
	for _, f := range fronts {
		all = append(all, f.Points...)
		evals += f.Evaluations
	}
	objs := make([][]float64, len(all))
	for i, p := range all {
		objs[i] = p.Objectives
	}
	merged := &Front{Evaluations: evals}
	for _, i := range pareto.Filter(objs) {
		merged.Points = append(merged.Points, all[i])
	}
	return merged
}

// SearchSpaceLog10 returns log₁₀ of the design-space sizes of §V.B for the
// instance: fcCLR (P^T · T! · Π Iₜ·FM_CL) and pfCLR (P^T · T! · Π Ipfₜ),
// the quantities motivating the pruning stage.
func SearchSpaceLog10(inst *Instance, flib *tdse.Library) (fc, pf float64) {
	T := inst.Graph.NumTasks()
	P := float64(inst.Platform.NumPEs())
	base := float64(T) * math.Log10(P)
	for k := 2; k <= T; k++ {
		base += math.Log10(float64(k))
	}
	fc, pf = base, base
	modes := maxModes(inst.Platform)
	fmCL := float64(inst.Catalog.NumConfigs(modes))
	for t := 0; t < T; t++ {
		tt := inst.Graph.Task(t).Type
		fc += math.Log10(float64(len(inst.Lib.Impls(tt))) * fmCL)
		if flib != nil {
			pf += math.Log10(float64(len(flib.Impls(tt))))
		}
	}
	if flib == nil {
		pf = math.NaN()
	}
	return fc, pf
}

// FcCLRWithParams is FcCLR with explicit GA parameters, the hook used by
// operator-ablation studies.
func FcCLRWithParams(inst *Instance, params moea.Params) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p := newFCProblem(inst, allFree)
	res, err := moea.Run(p, params, nil)
	if err != nil {
		return nil, err
	}
	front := &Front{Evaluations: res.Evaluations}
	for _, s := range res.Front {
		front.Points = append(front.Points, Point{
			Objectives: s.Objectives,
			QoS:        p.decodeResult(s.Genome),
			Genome:     s.Genome,
		})
	}
	return front, nil
}

// RandomSearch evaluates random full-configuration design points — the
// problem-agnostic sanity baseline.
func RandomSearch(inst *Instance, evals int, seed int64) (*Front, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p := newFCProblem(inst, allFree)
	res, err := moea.RandomSearch(p, evals, seed)
	if err != nil {
		return nil, err
	}
	front := &Front{Evaluations: res.Evaluations}
	for _, s := range res.Front {
		front.Points = append(front.Points, Point{
			Objectives: s.Objectives,
			QoS:        p.decodeResult(s.Genome),
			Genome:     s.Genome,
		})
	}
	return front, nil
}

// DecodePEs resolves the concrete PE id of every task of a
// full-configuration genome — used by mapping-locality analyses. The genome
// must use the fcCLR encoding (as produced by FcCLR, Proposed and
// RandomSearch fronts).
func DecodePEs(inst *Instance, g *moea.Genome) []int {
	p := newFCProblem(inst, allFree)
	out := make([]int, inst.Graph.NumTasks())
	for t := range out {
		_, _, pe := p.decodeGene(t, g.Genes[t])
		out[t] = pe
	}
	return out
}

// DecodeConfig resolves the base implementation and CLR assignment of one
// task of a full-configuration genome, for external analysis (e.g. fault
// injection of an optimized mapping).
func DecodeConfig(inst *Instance, g *moea.Genome, task int) (relmodel.Impl, relmodel.Assignment, error) {
	if err := inst.Validate(); err != nil {
		return relmodel.Impl{}, relmodel.Assignment{}, err
	}
	if task < 0 || task >= inst.Graph.NumTasks() {
		return relmodel.Impl{}, relmodel.Assignment{}, fmt.Errorf("core: task %d out of range", task)
	}
	p := newFCProblem(inst, allFree)
	impl, asg, _ := p.decodeGene(task, g.Genes[task])
	return impl, asg, nil
}

// EvaluateMapping decodes a full-configuration genome under the instance's
// models (including the communication and storage extensions when enabled)
// and returns its system-level QoS — for what-if analysis of an optimized
// mapping under altered platform assumptions.
func EvaluateMapping(inst *Instance, g *moea.Genome) (*schedule.Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(g.Genes) != inst.Graph.NumTasks() {
		return nil, fmt.Errorf("core: genome has %d genes, application has %d tasks",
			len(g.Genes), inst.Graph.NumTasks())
	}
	p := newFCProblem(inst, allFree)
	return p.decodeResult(g), nil
}
