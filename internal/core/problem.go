package core

import (
	"math/rand"

	"repro/internal/faultmodel"
	"repro/internal/moea"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/tdse"
)

// layerRestriction narrows the configuration degrees of freedom of an
// fcProblem, implementing the single-layer baselines of §VI.C.
type layerRestriction struct {
	// freeModes allows DVFS modes other than nominal.
	freeModes bool
	// freeHW / freeSSW / freeASW allow methods other than "none" (index 0)
	// at the respective layer.
	freeHW, freeSSW, freeASW bool
	// fixedGenes, when non-nil, pins each task's PE binding and
	// implementation choice to the given baseline design: only the free
	// layer fields remain degrees of freedom (the Π C_t space of Eq. 5).
	fixedGenes []moea.Gene
}

// allFree is the unrestricted cross-layer search space of fcCLR.
var allFree = layerRestriction{freeModes: true, freeHW: true, freeSSW: true, freeASW: true}

// metricsKey memoizes task-level Markov evaluations: metrics depend only on
// the task type, base implementation, CLR assignment and PE type — not on
// the PE instance or the rest of the genome.
type metricsKey struct {
	taskType, impl int
	asg            relmodel.Assignment
}

// fcProblem is the full-configuration CLR task-mapping problem (fcCLR):
// gene fields select the base implementation, DVFS mode and one method per
// layer; Markov evaluations are memoized in the instance's shared sharded
// cache, so concurrent strategies on the same instance reuse each other's
// work (see cache.go).
type fcProblem struct {
	inst     *Instance
	restrict layerRestriction
	compat   [][]int // PE ids per PE type index
	maxModes int
	objs     []SystemObjective
	cache    *metricsCache
	fit      *fitnessCache // nil when the instance disables memoization

	proxy     proxyScratch
	batchSeen map[metricsKey]struct{} // PrepareBatch dedup scratch (under proxy.mu)
}

func newFCProblem(inst *Instance, restrict layerRestriction) *fcProblem {
	return &fcProblem{
		inst:     inst,
		restrict: restrict,
		compat:   compatiblePEs(inst.Platform),
		maxModes: maxModes(inst.Platform),
		objs:     inst.objectives(),
		cache:    inst.sharedMetrics(),
		fit:      inst.sharedFitness(),
	}
}

func (p *fcProblem) NumTasks() int      { return p.inst.Graph.NumTasks() }
func (p *fcProblem) NumObjectives() int { return len(p.objs) }

func (p *fcProblem) RandomGene(rng *rand.Rand, task int) moea.Gene {
	tt := p.inst.Graph.Task(task).Type
	var g moea.Gene
	if p.restrict.fixedGenes != nil {
		g = p.restrict.fixedGenes[task]
		g.Mode, g.HW, g.SSW, g.ASW = 0, 0, 0, 0
	} else {
		g = moea.Gene{
			Impl: rng.Intn(len(p.inst.Lib.ImplsShared(tt))),
			PE:   rng.Intn(p.inst.Platform.NumPEs()),
		}
	}
	if p.restrict.freeModes {
		g.Mode = rng.Intn(p.maxModes)
	}
	if p.restrict.freeHW {
		g.HW = rng.Intn(len(p.inst.Catalog.HW))
	}
	if p.restrict.freeSSW {
		g.SSW = rng.Intn(len(p.inst.Catalog.SSW))
	}
	if p.restrict.freeASW {
		g.ASW = rng.Intn(len(p.inst.Catalog.ASW))
	}
	return g
}

func (p *fcProblem) MutateGene(rng *rand.Rand, task int, g moea.Gene) moea.Gene {
	// Single-point configuration mutation: re-randomize one free field.
	var fields []int
	if p.restrict.fixedGenes == nil {
		fields = []int{0, 1} // impl and pe are mapping decisions
	}
	if p.restrict.freeModes {
		fields = append(fields, 2)
	}
	if p.restrict.freeHW {
		fields = append(fields, 3)
	}
	if p.restrict.freeSSW {
		fields = append(fields, 4)
	}
	if p.restrict.freeASW {
		fields = append(fields, 5)
	}
	if len(fields) == 0 {
		return g
	}
	tt := p.inst.Graph.Task(task).Type
	switch fields[rng.Intn(len(fields))] {
	case 0:
		g.Impl = rng.Intn(len(p.inst.Lib.ImplsShared(tt)))
	case 1:
		g.PE = rng.Intn(p.inst.Platform.NumPEs())
	case 2:
		g.Mode = rng.Intn(p.maxModes)
	case 3:
		g.HW = rng.Intn(len(p.inst.Catalog.HW))
	case 4:
		g.SSW = rng.Intn(len(p.inst.Catalog.SSW))
	case 5:
		g.ASW = rng.Intn(len(p.inst.Catalog.ASW))
	}
	return g
}

// decodeGene resolves a gene into the concrete (implementation, assignment,
// PE id) triple. The PE field indexes into the PEs compatible with the
// chosen implementation's PE type (modulo), so every gene decodes validly.
func (p *fcProblem) decodeGene(task int, g moea.Gene) (relmodel.Impl, relmodel.Assignment, int) {
	tt := p.inst.Graph.Task(task).Type
	impls := p.inst.Lib.ImplsShared(tt)
	implIdx := mod(g.Impl, len(impls))
	impl := impls[implIdx]
	pt := p.inst.Platform.Types()[impl.PETypeIndex]
	asg := relmodel.Assignment{
		Mode: mod(g.Mode, len(pt.Modes)),
		HW:   mod(g.HW, len(p.inst.Catalog.HW)),
		SSW:  mod(g.SSW, len(p.inst.Catalog.SSW)),
		ASW:  mod(g.ASW, len(p.inst.Catalog.ASW)),
	}
	if !p.restrict.freeModes {
		asg.Mode = 0
	}
	if !p.restrict.freeHW {
		asg.HW = 0
	}
	if !p.restrict.freeSSW {
		asg.SSW = 0
	}
	if !p.restrict.freeASW {
		asg.ASW = 0
	}
	peList := p.compat[impl.PETypeIndex]
	pe := peList[mod(g.PE, len(peList))]
	return impl, asg, pe
}

func (p *fcProblem) taskMetrics(task int, g moea.Gene) (relmodel.Metrics, int) {
	impl, asg, pe := p.decodeGene(task, g)
	tt := p.inst.Graph.Task(task).Type
	impls := p.inst.Lib.ImplsShared(tt)
	key := metricsKey{taskType: tt, impl: mod(g.Impl, len(impls)), asg: asg}
	m := p.cache.lookup(key, func() relmodel.Metrics {
		pt := p.inst.Platform.Types()[impl.PETypeIndex]
		var m relmodel.Metrics
		var err error
		if p.inst.Faults != nil {
			// The checkpoint-policy axis is a tDSE decision carried by
			// pfCLR candidates, not an fcCLR gene: full-configuration
			// genomes evaluate at the zero policy.
			m, err = relmodel.EvaluateFM(impl, asg, pt, p.inst.Catalog,
				p.inst.Faults.For(pt.Name), faultmodel.CheckpointPolicy{})
		} else {
			m, err = relmodel.Evaluate(impl, asg, pt, p.inst.Catalog)
		}
		if err != nil {
			// Decoding guarantees validity; an error here is a programming
			// error, surfaced loudly.
			panic("core: task metrics evaluation failed: " + err.Error())
		}
		return m
	})
	return m, pe
}

// decodeDecision resolves one task's gene into its schedule decision — the
// per-task decode step shared by full and delta evaluation.
func (p *fcProblem) decodeDecision(task int, g moea.Gene) schedule.TaskDecision {
	m, pe := p.taskMetrics(task, g)
	d := schedule.TaskDecision{PE: pe, Metrics: m}
	if p.inst.EnforceMemory {
		impl, asg, _ := p.decodeGene(task, g)
		d.MemKB = relmodel.EffectiveFootprintKB(impl, asg, p.inst.Catalog)
	}
	return d
}

// problemCore accessors (see delta.go).
func (p *fcProblem) instance() *Instance        { return p.inst }
func (p *fcProblem) sysObjs() []SystemObjective { return p.objs }
func (p *fcProblem) fitCache() *fitnessCache    { return p.fit }

// decisionsInto resolves the genome into per-task schedule decisions,
// reusing dst's capacity.
func (p *fcProblem) decisionsInto(dst []schedule.TaskDecision, g *moea.Genome) []schedule.TaskDecision {
	return decisionsIntoCore(p, dst, g)
}

// NewEvaluator implements moea.ScratchProblem.
func (p *fcProblem) NewEvaluator() moea.Evaluator {
	return &coreEvaluator{p: p, sched: schedule.NewEvaluator()}
}

func (p *fcProblem) Evaluate(g *moea.Genome) moea.Evaluation {
	return p.NewEvaluator().Evaluate(g)
}

// decodeResult re-runs the scheduler for reporting purposes.
func (p *fcProblem) decodeResult(g *moea.Genome) *schedule.Result {
	res, err := schedule.RunWithComm(p.inst.Graph, p.inst.Platform, g.Order, p.decisionsInto(nil, g), p.inst.Comm)
	if err != nil {
		panic("core: schedule decoding failed: " + err.Error())
	}
	return res
}

// pfProblem is the Pareto-filtered task-mapping problem (pfCLR): the Impl
// gene indexes into the tDSE-filtered candidate list of the task's type,
// whose metrics are already evaluated — fitness evaluation reduces to
// scheduling plus the TABLE III estimators.
type pfProblem struct {
	inst   *Instance
	flib   *tdse.Library
	compat [][]int
	objs   []SystemObjective
	fit    *fitnessCache // shared with fcProblem: same instance, same keys

	proxy proxyScratch
}

func newPFProblem(inst *Instance, flib *tdse.Library) *pfProblem {
	return &pfProblem{
		inst:   inst,
		flib:   flib,
		compat: compatiblePEs(inst.Platform),
		objs:   inst.objectives(),
		fit:    inst.sharedFitness(),
	}
}

func (p *pfProblem) NumTasks() int      { return p.inst.Graph.NumTasks() }
func (p *pfProblem) NumObjectives() int { return len(p.objs) }

func (p *pfProblem) RandomGene(rng *rand.Rand, task int) moea.Gene {
	tt := p.inst.Graph.Task(task).Type
	return moea.Gene{
		Impl: rng.Intn(len(p.flib.Impls(tt))),
		PE:   rng.Intn(p.inst.Platform.NumPEs()),
	}
}

func (p *pfProblem) MutateGene(rng *rand.Rand, task int, g moea.Gene) moea.Gene {
	tt := p.inst.Graph.Task(task).Type
	if rng.Intn(2) == 0 {
		g.Impl = rng.Intn(len(p.flib.Impls(tt)))
	} else {
		g.PE = rng.Intn(p.inst.Platform.NumPEs())
	}
	return g
}

func (p *pfProblem) decodeGene(task int, g moea.Gene) (tdse.Candidate, int) {
	tt := p.inst.Graph.Task(task).Type
	cands := p.flib.Impls(tt)
	c := cands[mod(g.Impl, len(cands))]
	peList := p.compat[c.Base.PETypeIndex]
	pe := peList[mod(g.PE, len(peList))]
	return c, pe
}

// decodeDecision resolves one task's gene against the Pareto-filtered
// candidate library. Both problem formulations key the shared fitness
// cache by the decoded schedule inputs, so an fcCLR genome re-encoding a
// pfCLR seed hits the seed's cached evaluation whenever the decoded
// decisions agree (and computes fresh when a diverged tDSE library makes
// them differ).
func (p *pfProblem) decodeDecision(task int, g moea.Gene) schedule.TaskDecision {
	c, pe := p.decodeGene(task, g)
	d := schedule.TaskDecision{PE: pe, Metrics: c.Metrics}
	if p.inst.EnforceMemory {
		d.MemKB = relmodel.EffectiveFootprintKB(c.Base, c.Assignment, p.inst.Catalog)
	}
	return d
}

// problemCore accessors (see delta.go).
func (p *pfProblem) instance() *Instance        { return p.inst }
func (p *pfProblem) sysObjs() []SystemObjective { return p.objs }
func (p *pfProblem) fitCache() *fitnessCache    { return p.fit }

// decisionsInto resolves the genome against the Pareto-filtered candidate
// library, reusing dst's capacity.
func (p *pfProblem) decisionsInto(dst []schedule.TaskDecision, g *moea.Genome) []schedule.TaskDecision {
	return decisionsIntoCore(p, dst, g)
}

// NewEvaluator implements moea.ScratchProblem.
func (p *pfProblem) NewEvaluator() moea.Evaluator {
	return &coreEvaluator{p: p, sched: schedule.NewEvaluator()}
}

func (p *pfProblem) Evaluate(g *moea.Genome) moea.Evaluation {
	return p.NewEvaluator().Evaluate(g)
}

func (p *pfProblem) decodeResult(g *moea.Genome) *schedule.Result {
	res, err := schedule.RunWithComm(p.inst.Graph, p.inst.Platform, g.Order, p.decisionsInto(nil, g), p.inst.Comm)
	if err != nil {
		panic("core: schedule decoding failed: " + err.Error())
	}
	return res
}

func objectiveVector(r *schedule.Result, objs []SystemObjective) []float64 {
	out := make([]float64, len(objs))
	for i, o := range objs {
		out[i] = objectiveValue(r, o)
	}
	return out
}

// specViolation aggregates normalized constraint violations of Eq. 5.
func specViolation(s schedule.Spec, r *schedule.Result) float64 {
	v := 0.0
	if s.MaxMakespanUS > 0 && r.MakespanUS > s.MaxMakespanUS {
		v += r.MakespanUS/s.MaxMakespanUS - 1
	}
	if s.MinFunctionalRel > 0 && r.FunctionalRel < s.MinFunctionalRel {
		v += (s.MinFunctionalRel - r.FunctionalRel) / s.MinFunctionalRel
	}
	if s.MinMTTFHours > 0 && r.MTTFHours < s.MinMTTFHours {
		v += (s.MinMTTFHours - r.MTTFHours) / s.MinMTTFHours
	}
	if s.MaxEnergyUJ > 0 && r.EnergyUJ > s.MaxEnergyUJ {
		v += r.EnergyUJ/s.MaxEnergyUJ - 1
	}
	if s.MaxPeakPowerW > 0 && r.PeakPowerW > s.MaxPeakPowerW {
		v += r.PeakPowerW/s.MaxPeakPowerW - 1
	}
	return v
}

// totalViolation aggregates the Eq. 5 QoS violations with the optional
// storage-constraint violations.
func totalViolation(inst *Instance, r *schedule.Result) float64 {
	v := specViolation(inst.Spec, r)
	if inst.EnforceMemory {
		for _, over := range schedule.MemoryViolations(r, inst.Platform) {
			v += over
		}
	}
	return v
}

func mod(x, n int) int {
	if n <= 0 {
		panic("core: modulo of empty range")
	}
	x %= n
	if x < 0 {
		x += n
	}
	return x
}
