package core

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/moea"
)

// memCheckpointer is an in-memory Checkpointer, concurrency-safe so the
// Agnostic strategy's parallel layers can save simultaneously.
type memCheckpointer struct {
	mu     sync.Mutex
	stages map[string]*moea.Checkpoint
	fronts map[string]*FrontSnapshot
	saves  int
}

func newMemCheckpointer() *memCheckpointer {
	return &memCheckpointer{
		stages: make(map[string]*moea.Checkpoint),
		fronts: make(map[string]*FrontSnapshot),
	}
}

func (m *memCheckpointer) SaveStage(stage string, cp *moea.Checkpoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stages[stage] = cp
	m.saves++
}

func (m *memCheckpointer) SaveFront(stage string, fs *FrontSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fronts[stage] = fs
	delete(m.stages, stage)
}

func (m *memCheckpointer) ResumeStage(stage string) *moea.Checkpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stages[stage]
}

func (m *memCheckpointer) ResumeFront(stage string) *FrontSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fronts[stage]
}

// frontBytes fingerprints a front bit-exactly: objectives, QoS and genomes.
func frontBytes(t *testing.T, f *Front) string {
	t.Helper()
	type pt struct {
		Obj   []float64 `json:"obj"`
		QoS   any       `json:"qos"`
		Order []int     `json:"order"`
		Genes any       `json:"genes"`
	}
	pts := make([]pt, len(f.Points))
	for i, p := range f.Points {
		pts[i] = pt{Obj: p.Objectives, QoS: p.QoS, Order: p.Genome.Order, Genes: p.Genome.Genes}
	}
	b, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestProposedResumesAcrossStages interrupts the two-stage Proposed
// strategy inside its second stage and checks the rerun skips the
// completed pfclr stage, resumes fcclr mid-evolution, and produces a
// byte-identical front.
func TestProposedResumesAcrossStages(t *testing.T) {
	inst := sobelInstance()
	flib := filteredLib(t, inst)
	cfg := RunConfig{Pop: 24, Gens: 10, Seed: 3}

	ref, err := Proposed(inst, cfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	want := frontBytes(t, ref)

	ck := newMemCheckpointer()
	ctx, cancel := context.WithCancel(context.Background())
	icfg := cfg
	icfg.Ctx = ctx
	icfg.Checkpoint = ck
	icfg.CheckpointEvery = 2
	icfg.Progress = func(ev ProgressEvent) {
		if ev.Stage == "fcclr" && ev.Generation == 5 {
			cancel()
		}
	}
	if _, err := Proposed(inst, icfg, flib); err == nil {
		t.Fatal("interrupted run returned no error")
	}
	if ck.ResumeFront("pfclr") == nil {
		t.Fatal("completed pfclr stage has no saved front")
	}
	cp := ck.ResumeStage("fcclr")
	if cp == nil {
		t.Fatal("interrupted fcclr stage has no engine snapshot")
	}
	if cp.Generation != 5 {
		t.Fatalf("fcclr snapshot at generation %d, want 5", cp.Generation)
	}

	rcfg := cfg
	rcfg.Checkpoint = ck
	res, err := Proposed(inst, rcfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	if got := frontBytes(t, res); got != want {
		t.Fatal("resumed Proposed front differs from uninterrupted run")
	}
	if res.Evaluations != ref.Evaluations {
		t.Fatalf("resumed run spent %d evaluations, want %d", res.Evaluations, ref.Evaluations)
	}
}

// TestAgnosticResumesParallelLayers interrupts the four parallel
// single-layer runs of the Agnostic strategy and checks the rerun restores
// finished layers and resumes unfinished ones to a byte-identical union.
func TestAgnosticResumesParallelLayers(t *testing.T) {
	inst := sobelInstance()
	cfg := RunConfig{Pop: 20, Gens: 8, Seed: 11}

	ref, refLayers, err := Agnostic(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := frontBytes(t, ref)

	ck := newMemCheckpointer()
	ctx, cancel := context.WithCancel(context.Background())
	icfg := cfg
	icfg.Ctx = ctx
	icfg.Checkpoint = ck
	icfg.CheckpointEvery = 2
	var once sync.Once
	icfg.Progress = func(ev ProgressEvent) {
		if ev.Generation >= 4 {
			once.Do(cancel)
		}
	}
	if _, _, err := Agnostic(inst, icfg); err == nil {
		t.Fatal("interrupted run returned no error")
	}

	rcfg := cfg
	rcfg.Checkpoint = ck
	res, layers, err := Agnostic(inst, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := frontBytes(t, res); got != want {
		t.Fatal("resumed Agnostic union front differs from uninterrupted run")
	}
	for layer, lf := range refLayers {
		if got := frontBytes(t, layers[layer]); got != frontBytes(t, lf) {
			t.Fatalf("layer %v front differs after resume", layer)
		}
	}
}

// TestCheckpointerIdleOnCompletedRun reruns an already fully completed
// checkpointed run: every stage restores from its saved front without a
// single engine snapshot being taken.
func TestCheckpointerIdleOnCompletedRun(t *testing.T) {
	inst := sobelInstance()
	flib := filteredLib(t, inst)
	cfg := RunConfig{Pop: 20, Gens: 6, Seed: 21}

	ck := newMemCheckpointer()
	ccfg := cfg
	ccfg.Checkpoint = ck
	first, err := Proposed(inst, ccfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	savesAfterFirst := func() int {
		ck.mu.Lock()
		defer ck.mu.Unlock()
		return ck.saves
	}()

	second, err := Proposed(inst, ccfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	if got := func() int {
		ck.mu.Lock()
		defer ck.mu.Unlock()
		return ck.saves
	}(); got != savesAfterFirst {
		t.Fatalf("completed rerun took %d new engine snapshots", got-savesAfterFirst)
	}
	if frontBytes(t, first) != frontBytes(t, second) {
		t.Fatal("restored-front rerun differs from original")
	}
}

// TestFrontSnapshotRoundTrip checks the durable front form (bit-pattern
// objectives + genomes) survives JSON and restores byte-identically,
// including recomputed QoS.
func TestFrontSnapshotRoundTrip(t *testing.T) {
	inst := sobelInstance()
	front, err := FcCLR(inst, smallCfg(17))
	if err != nil {
		t.Fatal(err)
	}
	fs := SnapshotFront(front)
	blob, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	back := new(FrontSnapshot)
	if err := json.Unmarshal(blob, back); err != nil {
		t.Fatal(err)
	}
	p := newFCProblem(inst, allFree)
	restored := restoreFront(back, p.decodeResult)
	if frontBytes(t, front) != frontBytes(t, restored) {
		t.Fatal("front snapshot round-trip is not byte-identical")
	}
}
