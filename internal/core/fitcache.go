package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/moea"
	"repro/internal/schedule"
)

// fitnessShards is the shard count of the genome-level fitness cache; like
// the metric cache, 64 shards keep lock contention negligible at any
// realistic worker count.
const fitnessShards = 64

// DefaultFitnessCacheEntries is the total entry bound of an instance's
// fitness cache when Instance.FitnessCacheCap is zero. Each entry stores
// the canonical key (1+n words for the order plus 10 words per task) and
// the objective vector, ≈ 11·n·8 bytes for an n-task application — about
// 1 kB for the 10-task graphs of the paper's evaluation, so the default
// bound costs at most a few tens of MB even for the largest sweeps.
const DefaultFitnessCacheEntries = 8192

// fitnessEntry is a single-flight slot of the fitness cache: the first
// goroutine to claim a key evaluates inside once; concurrent requesters of
// the same genome block on that computation instead of duplicating it.
// key is the full canonical encoding, checked on every hit so a 64-bit
// hash collision can never return the wrong fitness.
type fitnessEntry struct {
	once sync.Once
	hash uint64
	key  []uint64
	objs []float64
	viol float64
	// times is the schedule replay artifact captured by delta-evaluating
	// computes (nil when the evaluation came through the plain path). It
	// adds ≈ 20·n bytes per entry on top of the ≈ 11·n·8-byte key — the
	// memory envelope stays linear in the task count.
	times *schedule.SeqTimes
	slot  int // index in the owning shard's clock ring
}

// fitnessShard is one lock domain: a hash-keyed map plus a clock-eviction
// ring (second-chance: a hit sets the ref bit, the clock hand clears set
// bits and evicts the first clear one).
type fitnessShard struct {
	mu   sync.Mutex
	m    map[uint64]*fitnessEntry
	ring []*fitnessEntry
	ref  []bool
	hand int
}

// fitnessCache memoizes whole-genome fitness evaluations per instance,
// keyed by the exact inputs of the schedule evaluation — the priority
// permutation and the per-task (PE, metrics, footprint) decisions. Keying
// on schedule inputs rather than gene encodings makes sharing across
// problem formulations automatic: a pfCLR seed and its re-encoded fcCLR
// genome decode to the same decisions and hit the same entry, while a
// diverged tDSE library (whose candidate metrics differ from the
// instance's) produces different keys and never false-shares.
//
// The cache assumes the instance (graph, platform, spec, comm model,
// objectives) is immutable after construction, as the metric cache already
// does.
type fitnessCache struct {
	shards   [fitnessShards]fitnessShard
	perShard int

	hits      atomic.Uint64
	misses    atomic.Uint64
	bypasses  atomic.Uint64
	evictions atomic.Uint64
}

// fitnessTotals aggregates the counters of every fitness cache in the
// process, the source of the service-level /metrics gauges.
var fitnessTotals struct {
	hits, misses, bypasses, evictions atomic.Uint64
}

func newFitnessCache(totalCap int) *fitnessCache {
	if totalCap <= 0 {
		totalCap = DefaultFitnessCacheEntries
	}
	per := totalCap / fitnessShards
	if per < 1 {
		per = 1
	}
	return &fitnessCache{perShard: per}
}

// appendFitnessKey encodes the schedule inputs into dst: the task count,
// the priority permutation, then per task the PE id, the bit patterns of
// all metric fields and the footprint.
func appendFitnessKey(dst []uint64, order []int, decisions []schedule.TaskDecision) []uint64 {
	dst = append(dst, uint64(len(order)))
	for _, t := range order {
		dst = append(dst, uint64(t))
	}
	for i := range decisions {
		d := &decisions[i]
		dst = append(dst, uint64(d.PE),
			math.Float64bits(d.Metrics.EtaHours),
			math.Float64bits(d.Metrics.MinExTimeUS),
			math.Float64bits(d.Metrics.AvgExTimeUS),
			math.Float64bits(d.Metrics.ErrProb),
			math.Float64bits(d.Metrics.MTTFHours),
			math.Float64bits(d.Metrics.PowerW),
			math.Float64bits(d.Metrics.EnergyUJ),
			math.Float64bits(d.Metrics.TempC),
			math.Float64bits(d.MemKB))
	}
	return dst
}

// fitnessHash mixes the key words FNV-1a style with a final avalanche.
func fitnessHash(key []uint64) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, w := range key {
		h ^= w
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func keyEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup returns the memoized evaluation for the key, calling compute at
// most once per live entry. Verified hash collisions (same 64-bit hash,
// different key) bypass the cache entirely — compute runs uncached — so a
// collision can only cost time, never correctness.
func (c *fitnessCache) lookup(hash uint64, key []uint64, compute func() ([]float64, float64)) moea.Evaluation {
	ev, _ := c.lookupTimes(hash, key, func() ([]float64, float64, *schedule.SeqTimes) {
		objs, viol := compute()
		return objs, viol, nil
	})
	return ev
}

// lookupTimes is lookup for delta-evaluating callers: compute additionally
// returns the schedule replay artifact, which is cached alongside the
// evaluation and handed back on hits so offspring of a cached genome can
// still reuse its schedule prefix. A nil artifact (plain-path entries) is
// valid — callers fall back to a full schedule run.
func (c *fitnessCache) lookupTimes(hash uint64, key []uint64, compute func() ([]float64, float64, *schedule.SeqTimes)) (moea.Evaluation, *schedule.SeqTimes) {
	s := &c.shards[hash%fitnessShards]
	s.mu.Lock()
	e, ok := s.m[hash]
	if ok {
		s.ref[e.slot] = true
		s.mu.Unlock()
		if !keyEqual(e.key, key) {
			c.bypasses.Add(1)
			fitnessTotals.bypasses.Add(1)
			objs, viol, times := compute()
			return moea.Evaluation{Objectives: objs, Violation: viol}, times
		}
		c.hits.Add(1)
		fitnessTotals.hits.Add(1)
	} else {
		if s.m == nil {
			s.m = make(map[uint64]*fitnessEntry, c.perShard)
		}
		e = &fitnessEntry{hash: hash, key: append([]uint64(nil), key...)}
		c.insertLocked(s, e)
		s.mu.Unlock()
		c.misses.Add(1)
		fitnessTotals.misses.Add(1)
	}
	e.once.Do(func() { e.objs, e.viol, e.times = compute() })
	return moea.Evaluation{Objectives: e.objs, Violation: e.viol}, e.times
}

// insertLocked places e in the shard's clock ring, evicting a cold entry
// when the shard is full. Callers hold s.mu.
func (c *fitnessCache) insertLocked(s *fitnessShard, e *fitnessEntry) {
	if len(s.ring) < c.perShard {
		e.slot = len(s.ring)
		s.ring = append(s.ring, e)
		s.ref = append(s.ref, false)
		s.m[e.hash] = e
		return
	}
	for {
		if s.ref[s.hand] {
			s.ref[s.hand] = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		old := s.ring[s.hand]
		delete(s.m, old.hash)
		c.evictions.Add(1)
		fitnessTotals.evictions.Add(1)
		e.slot = s.hand
		s.ring[s.hand] = e
		s.m[e.hash] = e
		s.hand = (s.hand + 1) % len(s.ring)
		return
	}
}

// FitnessCacheStats reports the state of a fitness cache.
type FitnessCacheStats struct {
	// Hits counts lookups answered from an existing entry (including ones
	// that waited on an in-flight evaluation of the same genome).
	Hits uint64
	// Misses counts lookups that created the entry and ran the evaluation.
	Misses uint64
	// Bypasses counts verified 64-bit hash collisions, evaluated uncached.
	Bypasses uint64
	// Evictions counts entries displaced by the clock hand.
	Evictions uint64
	// Entries is the current number of cached genomes; Capacity its bound.
	Entries, Capacity int
}

// HitRate is Hits / (Hits + Misses + Bypasses), or 0 before any lookup.
func (s FitnessCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Bypasses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *fitnessCache) stats() FitnessCacheStats {
	st := FitnessCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Bypasses:  c.bypasses.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  c.perShard * fitnessShards,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// FitnessCacheTotals reports the process-wide accumulated fitness-cache
// counters across all instances (live and collected) — the gauges served
// by clrearlyd's /metrics. Entries/Capacity are zero: sizes are
// per-instance state, see Instance.FitnessCacheStats.
func FitnessCacheTotals() FitnessCacheStats {
	return FitnessCacheStats{
		Hits:      fitnessTotals.hits.Load(),
		Misses:    fitnessTotals.misses.Load(),
		Bypasses:  fitnessTotals.bypasses.Load(),
		Evictions: fitnessTotals.evictions.Load(),
	}
}

// sharedFitness returns the instance's fitness cache, creating it on first
// use; nil when the instance disables genome memoization. Like
// sharedMetrics, lazy creation keeps Instance copyable.
func (in *Instance) sharedFitness() *fitnessCache {
	if in.FitnessCacheCap < 0 {
		return nil
	}
	metricsInitMu.Lock()
	defer metricsInitMu.Unlock()
	if in.fitness == nil {
		in.fitness = newFitnessCache(in.FitnessCacheCap)
	}
	return in.fitness
}

// FitnessCacheStats reports hit/miss/eviction counters and occupancy of
// the instance's genome-level fitness cache. The zero value is returned
// when the cache is disabled (FitnessCacheCap < 0).
func (in *Instance) FitnessCacheStats() FitnessCacheStats {
	c := in.sharedFitness()
	if c == nil {
		return FitnessCacheStats{}
	}
	return c.stats()
}
