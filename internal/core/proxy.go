package core

import (
	"math"
	"sync"

	"repro/internal/heft"
	"repro/internal/moea"
	"repro/internal/schedule"
)

// proxyScratch is the reusable state of surrogate proxy evaluation. The
// engines call ProxyEvaluate from the engine goroutine only, but the same
// problem may serve several concurrent runs, so the scratch carries its
// own lock (uncontended in the single-run case).
type proxyScratch struct {
	mu        sync.Mutex
	topo      []int
	decisions []schedule.TaskDecision
	execUS    []float64
	rank      []float64
	damage    []float64
	res       schedule.Result
}

// proxyEvaluate is the cheap screening evaluation shared by both problem
// formulations: per-task decisions are decoded through the same (cached)
// path as a full evaluation, but no list schedule is run. Energy, lifetime,
// functional reliability and memory load depend only on the decisions and
// are computed exactly; the makespan is replaced by the HEFT-style lower
// bound max(critical path, heaviest PE load) and the peak power by the
// largest single task power (both never above the true values). The result
// ranks offspring for screening — it is never reported as a fitness.
func proxyEvaluate(p problemCore, ps *proxyScratch, g *moea.Genome) moea.Evaluation {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	inst := p.instance()
	n := inst.Graph.NumTasks()
	nPE := inst.Platform.NumPEs()
	if ps.topo == nil {
		ps.topo = inst.Graph.TopoOrder()
		ps.execUS = make([]float64, n)
		ps.rank = make([]float64, n)
		ps.damage = make([]float64, nPE)
	}
	ps.decisions = decisionsIntoCore(p, ps.decisions, g)

	res := &ps.res
	*res = schedule.Result{
		PEBusyUS: growZero(res.PEBusyUS, nPE),
		PEMemKB:  growZero(res.PEMemKB, nPE),
	}
	for i := range ps.damage {
		ps.damage[i] = 0
	}
	zeta := inst.Graph.NormalizedCriticality()
	for t := 0; t < n; t++ {
		d := &ps.decisions[t]
		m := &d.Metrics
		ps.execUS[t] = m.AvgExTimeUS
		res.PEBusyUS[d.PE] += m.AvgExTimeUS
		res.PEMemKB[d.PE] += d.MemKB
		res.EnergyUJ += m.AvgExTimeUS * m.PowerW
		res.FunctionalRel += (1 - m.ErrProb) * zeta[t]
		if m.PowerW > res.PeakPowerW {
			res.PeakPowerW = m.PowerW
		}
		ps.damage[d.PE] += m.AvgExTimeUS / m.MTTFHours
	}
	res.ErrProb = 1 - res.FunctionalRel
	res.MTTFHours = math.Inf(1)
	for _, dm := range ps.damage {
		if dm == 0 {
			continue
		}
		if mttf := inst.Graph.PeriodUS / dm; mttf < res.MTTFHours {
			res.MTTFHours = mttf
		}
	}
	res.MakespanUS = heft.CriticalPathUS(inst.Graph, ps.topo, ps.execUS, ps.rank)
	for _, busy := range res.PEBusyUS {
		if busy > res.MakespanUS {
			res.MakespanUS = busy
		}
	}
	return moea.Evaluation{
		Objectives: objectiveVector(res, p.sysObjs()),
		Violation:  totalViolation(inst, res),
	}
}

// growZero returns a zeroed length-n slice reusing s's capacity.
func growZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// ProxyEvaluate implements moea.SurrogateProblem for the fcCLR problem.
func (p *fcProblem) ProxyEvaluate(g *moea.Genome) moea.Evaluation {
	return proxyEvaluate(p, &p.proxy, g)
}

// ProxyEvaluate implements moea.SurrogateProblem for the pfCLR problem.
func (p *pfProblem) ProxyEvaluate(g *moea.Genome) moea.Evaluation {
	return proxyEvaluate(p, &p.proxy, g)
}

// PrepareBatch implements moea.BatchProblem for the fcCLR problem: before
// a generation's offspring fan out to the evaluation workers, the distinct
// task configurations that differ from their parents' are decoded once on
// the engine goroutine, warming the shared Markov-metric cache in a single
// deduplicated pass (each warm solves the task's timing and functional
// chains as one batched pair, see relmodel.AnalyzeChains). Workers then
// hit warm entries instead of serializing on the cache's single-flight
// slots. Purely a cache effect — evaluation results are unchanged.
func (p *fcProblem) PrepareBatch(items []moea.BatchItem) {
	p.proxy.mu.Lock()
	defer p.proxy.mu.Unlock()
	if p.batchSeen == nil {
		p.batchSeen = make(map[metricsKey]struct{}, 64)
	}
	warmed := 0
	for _, it := range items {
		if it.Genome == nil {
			continue
		}
		for t, gene := range it.Genome.Genes {
			if it.Parent != nil && gene == it.Parent.Genes[t] {
				continue
			}
			key := p.metricsKeyFor(t, gene)
			if _, ok := p.batchSeen[key]; ok {
				continue
			}
			p.batchSeen[key] = struct{}{}
			p.taskMetrics(t, gene)
			warmed++
		}
	}
	clear(p.batchSeen)
	if warmed > 0 {
		accelCounters.batchWarmed.Add(uint64(warmed))
	}
}

// metricsKeyFor builds the metric-cache key of one task's gene, mirroring
// taskMetrics' key construction.
func (p *fcProblem) metricsKeyFor(task int, g moea.Gene) metricsKey {
	_, asg, _ := p.decodeGene(task, g)
	tt := p.inst.Graph.Task(task).Type
	return metricsKey{taskType: tt, impl: mod(g.Impl, len(p.inst.Lib.ImplsShared(tt))), asg: asg}
}
