package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pareto"
)

// benchmarkIslandUplift runs the equal-budget island-vs-single comparison
// behind BENCH_ISLANDS_PR8.json: for each pinned seed, one single-population
// run and one 2-island run at the identical evaluation budget, reporting the
// mean relative hypervolume uplift as a custom metric. The uplift metric is
// fully deterministic (every run is seeded), so the committed snapshot is a
// quality claim, not a timing sample.
func benchmarkIslandUplift(b *testing.B, inst *core.Instance) {
	seeds := []int64{1, 2, 3, 4, 5}
	var meanRel float64
	var evals int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meanRel, evals = 0, 0
		for _, seed := range seeds {
			cfg := core.RunConfig{Pop: 32, Gens: 24, Seed: seed}
			single, err := core.FcCLR(inst, cfg)
			if err != nil {
				b.Fatal(err)
			}
			icfg := cfg
			icfg.Islands = 2
			icfg.MigrationEvery = 2
			icfg.Migrants = 2
			island, err := core.FcCLR(inst, icfg)
			if err != nil {
				b.Fatal(err)
			}
			if island.Evaluations != single.Evaluations {
				b.Fatalf("seed %d: budgets diverged: island %d vs single %d",
					seed, island.Evaluations, single.Evaluations)
			}
			so, io := single.ObjectiveMatrix(), island.ObjectiveMatrix()
			ref := pareto.ReferencePoint(0.05, so, io)
			hvS := pareto.Hypervolume(so, ref)
			hvI := pareto.Hypervolume(io, ref)
			meanRel += (hvI - hvS) / hvS / float64(len(seeds))
			evals += island.Evaluations
		}
	}
	b.ReportMetric(100*meanRel, "hv-uplift-%")
	b.ReportMetric(float64(evals), "evals")
}

func BenchmarkIslandsSobel(b *testing.B) { benchmarkIslandUplift(b, benchSobelInstance()) }
func BenchmarkIslandsSynthetic(b *testing.B) {
	benchmarkIslandUplift(b, benchSyntheticInstance(10))
}
