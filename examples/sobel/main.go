// Sobel example: the full study of the paper's real-life application —
// task-level analysis of every task type (TABLE IV style), then a
// comparison of all four system-level DSE strategies on the Sobel pipeline
// under a makespan QoS constraint.
//
//	go run ./examples/sobel
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/characterize"
	"repro/internal/core"
	"repro/internal/pareto"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/tdse"
)

func main() {
	plat := platform.Default()
	app := taskgraph.Sobel()
	lib := characterize.Sobel(plat)
	catalog := relmodel.DefaultCatalog()

	// Task-level analysis: how many Pareto implementations does each task
	// type have under progressively richer objective sets?
	fmt.Println("Task-level DSE (number of Pareto implementations per objective set):")
	names := []string{"GScale", "GSmth", "SobGrad", "CombThr"}
	fmt.Printf("%-12s", "objectives")
	for _, n := range names {
		fmt.Printf("%9s", n)
	}
	fmt.Println()
	for i, objs := range tdse.ObjectiveSets() {
		fmt.Printf("%-12s", fmt.Sprintf("set %d", i+1))
		for tt := range names {
			front, err := tdse.Explore(lib, tt, plat, catalog, tdse.DefaultOptions(), objs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%9d", len(front))
		}
		fmt.Println()
	}

	// System-level DSE under a QoS constraint: makespan within 2.5 ms.
	inst := &core.Instance{
		Graph:      app,
		Platform:   plat,
		Lib:        lib,
		Catalog:    catalog,
		Objectives: core.DefaultObjectives(),
		Spec:       schedule.Spec{MaxMakespanUS: 2500},
	}
	flib, err := tdse.Build(lib, plat, catalog, tdse.DefaultOptions(),
		[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.RunConfig{Pop: 60, Gens: 40, Seed: 7}
	fronts := map[string]*core.Front{}
	if fronts["fcCLR"], err = core.FcCLR(inst, cfg); err != nil {
		log.Fatal(err)
	}
	if fronts["pfCLR"], err = core.PfCLR(inst, cfg, flib); err != nil {
		log.Fatal(err)
	}
	if fronts["proposed"], err = core.Proposed(inst, cfg, flib); err != nil {
		log.Fatal(err)
	}
	if fronts["agnostic"], _, err = core.Agnostic(inst, cfg); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSystem-level DSE (makespan ≤ 2.5 ms):")
	order := []string{"agnostic", "fcCLR", "pfCLR", "proposed"}
	ref := pareto.ReferencePoint(0.1,
		fronts["agnostic"].ObjectiveMatrix(), fronts["fcCLR"].ObjectiveMatrix(),
		fronts["pfCLR"].ObjectiveMatrix(), fronts["proposed"].ObjectiveMatrix())
	fmt.Printf("%-10s %8s %14s %14s %14s\n", "method", "#points", "best mk (µs)", "best errP (%)", "hypervolume")
	for _, m := range order {
		f := fronts[m]
		bestMk, bestErr := math.Inf(1), math.Inf(1)
		for _, p := range f.Points {
			bestMk = math.Min(bestMk, p.QoS.MakespanUS)
			bestErr = math.Min(bestErr, p.QoS.ErrProb)
		}
		hv := pareto.Hypervolume(f.ObjectiveMatrix(), ref)
		fmt.Printf("%-10s %8d %14.1f %14.4f %14.4g\n", m, len(f.Points), bestMk, bestErr*100, hv)
	}

	// Show the best mapping by error probability in detail.
	best := fronts["proposed"].Points[0]
	for _, p := range fronts["proposed"].Points {
		if p.QoS.ErrProb < best.QoS.ErrProb {
			best = p
		}
	}
	fmt.Println("\nMost reliable proposed mapping:")
	fmt.Printf("  makespan %.1f µs, error probability %.4f%%, MTTF %.3g h, peak power %.2f W\n",
		best.QoS.MakespanUS, best.QoS.ErrProb*100, best.QoS.MTTFHours, best.QoS.PeakPowerW)
	for t := 0; t < app.NumTasks(); t++ {
		fmt.Printf("  %-10s starts %7.1f µs on PE schedule slot, ends %7.1f µs\n",
			app.Task(t).Name, best.QoS.StartUS[t], best.QoS.EndUS[t])
	}
}
