// Markov example: use the task-level reliability models directly — the
// Markov chains of Fig. 3 — to study how a cross-layer configuration shapes
// a task's average execution time and error probability.
//
//	go run ./examples/markov
//
// The example sweeps checkpoint counts and fault rates for a fixed task and
// prints the timing/functional reliability of each configuration, showing
// the optimal-checkpoint effect the paper cites (too many checkpoints hurt).
package main

import (
	"fmt"
	"log"

	"repro/internal/relmodel"
)

func main() {
	fmt.Println("Task: 1 ms useful execution; detection 2%, rollback 3%, checkpoint 4% overheads")
	fmt.Println("CLR: 40% HW masking, 92% detection coverage, 98% tolerance, 60% ASW masking")
	fmt.Println()
	for _, lambda := range []float64{1e-5, 1e-4, 5e-4} {
		fmt.Printf("fault rate λ = %.0e /µs (λT = %.2f)\n", lambda, lambda*1000)
		fmt.Printf("  %11s %14s %14s %12s\n", "checkpoints", "minExT (µs)", "avgExT (µs)", "errP (%)")
		for _, chk := range []int{0, 1, 2, 4, 8, 16} {
			params := relmodel.ChainParams{
				ExecTimeUS:            1000,
				LambdaPerUS:           lambda,
				Checkpoints:           chk,
				DetTimeUS:             0.02 * 1000 / float64(chk+1),
				TolTimeUS:             0.03 * 1000 / float64(chk+1),
				ChkTimeUS:             0.04 * 1000,
				MHW:                   0.40,
				MImplSSW:              0.05,
				CovDet:                0.92,
				MTol:                  0.98,
				MASW:                  0.60,
				ModelCheckpointErrors: true,
			}
			rel, err := relmodel.AnalyzeChains(params)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %11d %14.1f %14.1f %12.4f\n",
				chk, rel.MinExTimeUS, rel.AvgExTimeUS, rel.ErrProb*100)
		}
		fmt.Println()
	}

	// The same chains are also available as explicit objects for custom
	// CLR configurations (arbitrary states can be inspected or dumped).
	chain, err := relmodel.BuildFunctionalChain(relmodel.ChainParams{
		ExecTimeUS:  500,
		LambdaPerUS: 2e-4,
		Checkpoints: 1,
		MHW:         0.3,
		CovDet:      0.9,
		MTol:        0.95,
		MASW:        0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := chain.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	pOK, _ := chain.AbsorptionProbability(res, "noError")
	fmt.Printf("explicit functional chain: %d states, P(noError) = %.6f\n",
		chain.NumStates(), pOK)
}
