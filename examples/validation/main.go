// Validation example: cross-check the analytical early-stage estimators
// against Monte-Carlo fault injection — the evidence that the Markov-chain
// reliability models (Fig. 3) and the TABLE III system estimators are
// trustworthy at design time.
//
//	go run ./examples/validation [-trials N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/faultsim"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
)

func main() {
	trials := flag.Int("trials", 50000, "fault-injection trials per configuration")
	flag.Parse()

	fmt.Println("Task-level validation: Markov analysis vs fault injection")
	fmt.Printf("%-26s %12s %12s %10s %10s\n",
		"configuration", "avgT (ana)", "avgT (sim)", "errP (ana)", "errP (sim)")
	configs := []struct {
		name   string
		params relmodel.ChainParams
	}{
		{"no mitigation", relmodel.ChainParams{ExecTimeUS: 1000, LambdaPerUS: 2e-4}},
		{"retry only", relmodel.ChainParams{
			ExecTimeUS: 1000, LambdaPerUS: 2e-4,
			DetTimeUS: 50, TolTimeUS: 40, CovDet: 0.9, MTol: 0.95,
		}},
		{"full CLR, 2 checkpoints", relmodel.ChainParams{
			ExecTimeUS: 1000, LambdaPerUS: 2e-4, Checkpoints: 2,
			DetTimeUS: 25, TolTimeUS: 20, ChkTimeUS: 30,
			MHW: 0.4, MImplSSW: 0.05, CovDet: 0.92, MTol: 0.98, MASW: 0.6,
			ModelCheckpointErrors: true,
		}},
	}
	for _, c := range configs {
		ana, err := relmodel.AnalyzeChains(c.params)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := faultsim.SimulateTask(c.params, *trials, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %12.1f %12.1f %9.3f%% %9.3f%%\n",
			c.name, ana.AvgExTimeUS, sim.MeanTimeUS, ana.ErrProb*100, sim.ErrProb*100)
	}

	// System-level validation on the Sobel pipeline.
	fmt.Println("\nSystem-level validation: TABLE III estimators vs event simulation")
	g := taskgraph.Sobel()
	params := relmodel.ChainParams{
		ExecTimeUS: 450, LambdaPerUS: 1e-4, Checkpoints: 1,
		DetTimeUS: 15, TolTimeUS: 10, ChkTimeUS: 20,
		MHW: 0.3, CovDet: 0.9, MTol: 0.95, MASW: 0.5,
	}
	asg := make([]faultsim.TaskAssignment, g.NumTasks())
	decisions := make([]schedule.TaskDecision, g.NumTasks())
	rel, err := relmodel.AnalyzeChains(params)
	if err != nil {
		log.Fatal(err)
	}
	for t := range asg {
		asg[t] = faultsim.TaskAssignment{PE: t % 3, Params: params}
		decisions[t] = schedule.TaskDecision{
			PE: t % 3,
			Metrics: relmodel.Metrics{
				AvgExTimeUS: rel.AvgExTimeUS, MinExTimeUS: rel.MinExTimeUS,
				ErrProb: rel.ErrProb, PowerW: 1, MTTFHours: 1e5,
			},
		}
	}
	prio := g.TopoOrder()
	analytic, err := schedule.Run(g, platform.Default(), prio, decisions)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := faultsim.SimulateApp(g, 6, prio, asg, *trials/2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  makespan:              analytic %8.1f µs   simulated %8.1f ± %.1f µs\n",
		analytic.MakespanUS, sim.MeanMakespanUS, sim.MakespanStdErr)
	fmt.Printf("  functional reliability: analytic %8.5f     simulated %8.5f\n",
		analytic.FunctionalRel, sim.FunctionalRel)
}
