// Scaling example: how the DSE strategies behave as the application grows —
// the motivation for the paper's two-stage methodology. For each size, the
// example generates a synthetic application, runs fcCLR and the proposed
// method with equal GA budgets, and reports front quality (hypervolume
// against a shared reference) and design-space sizes.
//
//	go run ./examples/scaling [-sizes 10,30,50] [-pop 40] [-gens 25]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/characterize"
	"repro/internal/core"
	"repro/internal/pareto"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/tdse"
	"repro/internal/tgff"
)

func main() {
	sizesFlag := flag.String("sizes", "10,20,40", "application sizes to sweep")
	pop := flag.Int("pop", 40, "GA population")
	gens := flag.Int("gens", 25, "GA generations")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("invalid size %q", s)
		}
		sizes = append(sizes, n)
	}

	plat := platform.Default()
	lib := characterize.Synthetic(plat, characterize.DefaultSyntheticConfig(10), 99)
	catalog := relmodel.DefaultCatalog()
	flib, err := tdse.Build(lib, plat, catalog, tdse.DefaultOptions(),
		[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%7s %14s %14s %12s %12s %10s %10s\n",
		"#tasks", "fcCLR space", "pfCLR space", "HV(fcCLR)", "HV(prop)", "Δ%", "time")
	for _, n := range sizes {
		inst := &core.Instance{
			Graph:      tgff.MustGenerate(tgff.DefaultConfig(n), int64(n)),
			Platform:   plat,
			Lib:        lib,
			Catalog:    catalog,
			Objectives: core.DefaultObjectives(),
		}
		fcLog, pfLog := core.SearchSpaceLog10(inst, flib)
		cfg := core.RunConfig{Pop: *pop, Gens: *gens, Seed: int64(n)}

		start := time.Now()
		fc, err := core.FcCLR(inst, cfg)
		if err != nil {
			log.Fatal(err)
		}
		prop, err := core.Proposed(inst, cfg, flib)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		ref := pareto.ReferencePoint(0.1, fc.ObjectiveMatrix(), prop.ObjectiveMatrix())
		hvFC := pareto.Hypervolume(fc.ObjectiveMatrix(), ref)
		hvProp := pareto.Hypervolume(prop.ObjectiveMatrix(), ref)
		fmt.Printf("%7d %14s %14s %12.4g %12.4g %9.0f%% %10s\n",
			n,
			fmt.Sprintf("10^%.0f", fcLog),
			fmt.Sprintf("10^%.0f", pfLog),
			hvFC, hvProp, 100*(hvProp-hvFC)/hvFC,
			elapsed.Round(time.Millisecond))
	}
}
