// Scenarios example: early-stage exploration across operating conditions —
// the varying-fault-rate setting that motivates cross-layer reliability in
// the paper's introduction (e.g. strongly elevated soft-error rates at high
// altitude). The example runs the proposed DSE once per environment and
// compares a static worst-case design against an adaptive runtime policy
// that switches mappings with the environment, at equal reliability.
//
//	go run ./examples/scenarios
package main

import (
	"fmt"
	"log"

	"repro/internal/characterize"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/scenario"
	"repro/internal/tdse"
	"repro/internal/tgff"
)

func main() {
	plat := platform.Default()
	inst := &core.Instance{
		Graph:      tgff.MustGenerate(tgff.DefaultConfig(15), 11),
		Platform:   plat,
		Lib:        characterize.Synthetic(plat, characterize.DefaultSyntheticConfig(10), 12),
		Catalog:    relmodel.DefaultCatalog(),
		Objectives: core.DefaultObjectives(),
	}
	set := scenario.DefaultSet()
	fmt.Println("Mission profile:")
	for _, sc := range set {
		fmt.Printf("  %-15s fault-rate ×%-3.0f %5.0f%% of mission time\n",
			sc.Name, sc.FaultRateFactor, sc.Weight*100)
	}

	res, err := scenario.Study(inst, core.RunConfig{Pop: 48, Gens: 30, Seed: 21},
		[]tdse.Objective{tdse.AvgExT, tdse.ErrProb}, set)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nReliability target (static worst-case design): error ≤ %.4f%%\n",
		res.ReliabilityTarget*100)
	fmt.Printf("%-15s %22s %22s\n", "scenario", "static mk(µs)/err(%)", "adaptive mk(µs)/err(%)")
	for i := range set {
		s, a := res.Static.PerScenario[i], res.Adaptive.PerScenario[i]
		fmt.Printf("%-15s %12.0f / %6.4f %12.0f / %6.4f\n",
			set[i].Name, s.MakespanUS, s.ErrProb*100, a.MakespanUS, a.ErrProb*100)
	}
	fmt.Printf("\nexpected makespan: static %.0f µs, adaptive %.0f µs (%.1f%% faster)\n",
		res.Static.ExpMakespanUS, res.Adaptive.ExpMakespanUS, res.SpeedupPct())
	fmt.Printf("expected error:    static %.4f%%, adaptive %.4f%%\n",
		res.Static.ExpErrProb*100, res.Adaptive.ExpErrProb*100)
}
