// Quickstart: run the CL(R)Early proposed DSE methodology end to end on the
// Sobel edge-detection application and print the resulting Pareto front.
//
//	go run ./examples/quickstart
//
// Steps: build the platform and application models, characterize the task
// implementations, run the task-level DSE to Pareto-filter CLR-integrated
// implementations, then run the two-stage system-level optimization
// (pfCLR → seeded fcCLR).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/characterize"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/taskgraph"
	"repro/internal/tdse"
)

func main() {
	// 1. The architecture model: 6 PEs of 3 types (§VI.A).
	plat := platform.Default()

	// 2. The application model: Sobel edge detection, Fig. 2(b).
	app := taskgraph.Sobel()

	// 3. Task implementations (the Gem5/McPAT-style characterization) and
	//    the reliability method catalog of TABLE II.
	lib := characterize.Sobel(plat)
	catalog := relmodel.DefaultCatalog()

	inst := &core.Instance{
		Graph:      app,
		Platform:   plat,
		Lib:        lib,
		Catalog:    catalog,
		Objectives: core.DefaultObjectives(), // minimize makespan + error probability
	}

	// 4. Task-level DSE: Pareto-filter each task type's CLR-integrated
	//    implementations (tDSE).
	flib, err := tdse.Build(lib, plat, catalog, tdse.DefaultOptions(),
		[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
	if err != nil {
		log.Fatal(err)
	}
	for tt, n := range flib.Counts() {
		fmt.Printf("task type %d: %d Pareto implementations\n", tt, n)
	}

	// 5. System-level DSE with the proposed two-stage methodology.
	front, err := core.Proposed(inst, core.DefaultRunConfig(42), flib)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nproposed DSE found %d Pareto-optimal task mappings (%d evaluations):\n",
		len(front.Points), front.Evaluations)
	pts := front.Points
	sort.Slice(pts, func(i, j int) bool { return pts[i].QoS.MakespanUS < pts[j].QoS.MakespanUS })
	fmt.Printf("%14s %14s %14s\n", "makespan (µs)", "err prob (%)", "MTTF (hours)")
	for _, p := range pts {
		fmt.Printf("%14.1f %14.4f %14.3g\n",
			p.QoS.MakespanUS, p.QoS.ErrProb*100, p.QoS.MTTFHours)
	}
}
