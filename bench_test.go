// Package repro_test benchmarks the experiment harness: one benchmark per
// table and figure of the paper's evaluation (reduced budgets — the full
// paper-scale sweep is `go run ./cmd/experiments`), plus micro-benchmarks of
// the substrates (Markov analysis, scheduling, hypervolume, GA generations)
// that dominate DSE runtime.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/characterize"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/pareto"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/tdse"
	"repro/internal/tgff"
	"repro/internal/thermal"
)

// benchCfg is the reduced experiment configuration used by the per-figure
// benchmarks.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Sizes = []int{10, 20}
	return cfg
}

func BenchmarkFig6a(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig6a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig6b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		r, err := cfg.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.IncreasePct[0], "pct-improvement-10tasks")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		r, err := cfg.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.IncreasePct[0], "pct-improvement-10tasks")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{10}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- sweep engine benchmarks ----

// benchmarkSweep runs the TABLE V workload (a proposed run and a four-layer
// agnostic run per size — the sweep engine's cells) at the given cell-level
// parallelism.
func benchmarkSweep(b *testing.B, jobs int) {
	cfg := benchCfg()
	cfg.Jobs = jobs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchmarkSweep(b, runtime.NumCPU()) }

// BenchmarkMetricsCacheSharing measures the instance-level Markov-metric
// cache across strategies: an fcCLR run followed by the four-layer agnostic
// runs on the same instance. The reported hit rate is the fraction of
// task-metric lookups served without re-running the Markov analysis.
func BenchmarkMetricsCacheSharing(b *testing.B) {
	p := platform.Default()
	cfg := core.RunConfig{Pop: 24, Gens: 10, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := &core.Instance{
			Graph:      tgff.MustGenerate(tgff.DefaultConfig(20), 7),
			Platform:   p,
			Lib:        characterize.Synthetic(p, characterize.DefaultSyntheticConfig(10), 8),
			Catalog:    relmodel.DefaultCatalog(),
			Objectives: core.DefaultObjectives(),
		}
		if _, err := core.FcCLR(inst, cfg); err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.Agnostic(inst, cfg); err != nil {
			b.Fatal(err)
		}
		st := inst.MetricsCacheStats()
		b.ReportMetric(st.HitRate()*100, "cache-hit-%")
		b.ReportMetric(float64(st.Entries), "cache-entries")
	}
}

// ---- genome-evaluation benchmarks ----

// benchSobelInstance builds a fresh sobel DSE instance (empty caches).
func benchSobelInstance() *core.Instance {
	p := platform.Default()
	return &core.Instance{
		Graph:      taskgraph.Sobel(),
		Platform:   p,
		Lib:        characterize.Sobel(p),
		Catalog:    relmodel.DefaultCatalog(),
		Objectives: core.DefaultObjectives(),
	}
}

// benchSyntheticInstance builds a fresh synthetic-graph instance.
func benchSyntheticInstance(tasks int) *core.Instance {
	p := platform.Default()
	return &core.Instance{
		Graph:      tgff.MustGenerate(tgff.DefaultConfig(tasks), 7),
		Platform:   p,
		Lib:        characterize.Synthetic(p, characterize.DefaultSyntheticConfig(10), 8),
		Catalog:    relmodel.DefaultCatalog(),
		Objectives: core.DefaultObjectives(),
	}
}

// benchmarkEvaluateMapping measures one full genome decode + schedule
// evaluation — the per-chromosome inner loop of every GA generation — on an
// optimized genome taken from a short FcCLR run.
func benchmarkEvaluateMapping(b *testing.B, inst *core.Instance) {
	front, err := core.FcCLR(inst, core.RunConfig{Pop: 16, Gens: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := front.Points[0].Genome
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateMapping(inst, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateMappingSobel(b *testing.B) { benchmarkEvaluateMapping(b, benchSobelInstance()) }
func BenchmarkEvaluateMappingSynthetic(b *testing.B) {
	benchmarkEvaluateMapping(b, benchSyntheticInstance(20))
}

// BenchmarkFitnessCacheCold runs fcCLR on a fresh instance every iteration,
// so every fitness evaluation misses the genome-level cache.
func BenchmarkFitnessCacheCold(b *testing.B) {
	cfg := core.RunConfig{Pop: 24, Gens: 10, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FcCLR(benchSobelInstance(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitnessCacheWarm repeats the identical run on one instance: after
// the first (untimed) pass, every evaluation is served from the fitness
// cache, bounding the memoization upside.
func BenchmarkFitnessCacheWarm(b *testing.B) {
	inst := benchSobelInstance()
	cfg := core.RunConfig{Pop: 24, Gens: 10, Seed: 1}
	if _, err := core.FcCLR(inst, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FcCLR(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(inst.FitnessCacheStats().HitRate()*100, "fitness-hit-%")
}

// ---- substrate micro-benchmarks ----

func BenchmarkMarkovAnalyze(b *testing.B) {
	params := relmodel.ChainParams{
		ExecTimeUS:            1000,
		LambdaPerUS:           1e-4,
		Checkpoints:           2,
		DetTimeUS:             20,
		TolTimeUS:             30,
		ChkTimeUS:             25,
		MHW:                   0.4,
		MImplSSW:              0.05,
		CovDet:                0.92,
		MTol:                  0.98,
		MASW:                  0.6,
		ModelCheckpointErrors: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relmodel.AnalyzeChains(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaskEvaluate(b *testing.B) {
	p := platform.Default()
	lib := characterize.Sobel(p)
	cat := relmodel.DefaultCatalog()
	impl := lib.Impls(0)[0]
	asg := relmodel.Assignment{Mode: 1, HW: 2, SSW: 2, ASW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relmodel.Evaluate(impl, asg, p.Types()[0], cat); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScheduleInputs builds a deterministic decision vector for g.
func benchScheduleInputs(g *taskgraph.Graph, p *platform.Platform) []schedule.TaskDecision {
	decisions := make([]schedule.TaskDecision, g.NumTasks())
	for t := range decisions {
		decisions[t] = schedule.TaskDecision{
			PE: t % p.NumPEs(),
			Metrics: relmodel.Metrics{
				AvgExTimeUS: 100 + float64(t), MinExTimeUS: 100,
				PowerW: 1, MTTFHours: 1e5, ErrProb: 0.01,
			},
		}
	}
	return decisions
}

// benchmarkScheduleRun times list scheduling + the Eq.1–4 QoS reduction,
// either allocating fresh per call (ev == nil, the schedule.Run path) or
// reusing one Evaluator's scratch across iterations.
func benchmarkScheduleRun(b *testing.B, g *taskgraph.Graph, ev *schedule.Evaluator) {
	p := platform.Default()
	decisions := benchScheduleInputs(g, p)
	prio := g.TopoOrder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if ev == nil {
			_, err = schedule.Run(g, p, prio, decisions)
		} else {
			_, err = ev.Run(g, p, prio, decisions)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleRunSobel(b *testing.B) { benchmarkScheduleRun(b, taskgraph.Sobel(), nil) }
func BenchmarkScheduleRun50(b *testing.B) {
	benchmarkScheduleRun(b, tgff.MustGenerate(tgff.DefaultConfig(50), 1), nil)
}
func BenchmarkScheduleEvaluatorSobel(b *testing.B) {
	benchmarkScheduleRun(b, taskgraph.Sobel(), schedule.NewEvaluator())
}
func BenchmarkScheduleEvaluator50(b *testing.B) {
	benchmarkScheduleRun(b, tgff.MustGenerate(tgff.DefaultConfig(50), 1), schedule.NewEvaluator())
}

func BenchmarkHypervolume2D(b *testing.B) {
	pts := make([][]float64, 100)
	for i := range pts {
		x := float64(i) / 100
		pts[i] = []float64{x, 1 - x*x}
	}
	ref := []float64{1.2, 1.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pareto.Hypervolume(pts, ref)
	}
}

func BenchmarkTDSEExplore(b *testing.B) {
	p := platform.Default()
	lib := characterize.Sobel(p)
	cat := relmodel.DefaultCatalog()
	objs := []tdse.Objective{tdse.AvgExT, tdse.ErrProb}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tdse.Explore(lib, taskgraph.SobelGSmth, p, cat, tdse.DefaultOptions(), objs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFcCLRSobel(b *testing.B) {
	p := platform.Default()
	inst := &core.Instance{
		Graph:      taskgraph.Sobel(),
		Platform:   p,
		Lib:        characterize.Sobel(p),
		Catalog:    relmodel.DefaultCatalog(),
		Objectives: core.DefaultObjectives(),
	}
	cfg := core.RunConfig{Pop: 24, Gens: 10, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := core.FcCLR(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMOEADSobel(b *testing.B) {
	p := platform.Default()
	inst := &core.Instance{
		Graph:      taskgraph.Sobel(),
		Platform:   p,
		Lib:        characterize.Sobel(p),
		Catalog:    relmodel.DefaultCatalog(),
		Objectives: core.DefaultObjectives(),
	}
	cfg := core.RunConfig{Pop: 24, Gens: 10, Seed: 1, Engine: core.MOEAD}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := core.FcCLR(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHEFT50(b *testing.B) {
	p := platform.Default()
	inst := &core.Instance{
		Graph:      tgff.MustGenerate(tgff.DefaultConfig(50), 1),
		Platform:   p,
		Lib:        characterize.Synthetic(p, characterize.DefaultSyntheticConfig(10), 2),
		Catalog:    relmodel.DefaultCatalog(),
		Objectives: core.DefaultObjectives(),
	}
	flib, err := tdse.Build(inst.Lib, p, inst.Catalog, tdse.DefaultOptions(),
		[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.HEFTSeed(inst, flib); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultInjection(b *testing.B) {
	params := relmodel.ChainParams{
		ExecTimeUS: 1000, LambdaPerUS: 2e-4, Checkpoints: 2,
		DetTimeUS: 25, TolTimeUS: 20, ChkTimeUS: 30,
		MHW: 0.4, CovDet: 0.92, MTol: 0.98, MASW: 0.6,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultsim.SimulateTask(params, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThermalTrace(b *testing.B) {
	g := taskgraph.Sobel()
	p := platform.Default()
	decisions := make([]schedule.TaskDecision, g.NumTasks())
	for t := range decisions {
		decisions[t] = schedule.TaskDecision{
			PE: t % 3,
			Metrics: relmodel.Metrics{
				AvgExTimeUS: 400, MinExTimeUS: 400, PowerW: 1, MTTFHours: 1e5,
			},
		}
	}
	res, err := schedule.Run(g, p, g.TopoOrder(), decisions)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.Simulate(g, p, decisions, res, 3, 20); err != nil {
			b.Fatal(err)
		}
	}
}
