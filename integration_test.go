package repro_test

import (
	"math"
	"testing"

	"repro/internal/characterize"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/pareto"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/tdse"
	"repro/internal/tgff"
)

// Integration tests exercise the full pipeline across module boundaries:
// characterization → task-level DSE → system-level DSE → QoS decoding,
// including the extension features (extended catalog, communication model)
// and the fault-injection cross-check.

func buildInstance(t *testing.T, tasks int, seed int64, cat *relmodel.Catalog) (*core.Instance, *tdse.Library) {
	t.Helper()
	p := platform.Default()
	inst := &core.Instance{
		Graph:      tgff.MustGenerate(tgff.DefaultConfig(tasks), seed),
		Platform:   p,
		Lib:        characterize.Synthetic(p, characterize.DefaultSyntheticConfig(10), seed+100),
		Catalog:    cat,
		Objectives: core.DefaultObjectives(),
	}
	flib, err := tdse.Build(inst.Lib, p, cat, tdse.DefaultOptions(),
		[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
	if err != nil {
		t.Fatal(err)
	}
	return inst, flib
}

func TestFullPipelineDeterminism(t *testing.T) {
	runOnce := func() [][]float64 {
		inst, flib := buildInstance(t, 12, 5, relmodel.DefaultCatalog())
		cfg := core.RunConfig{Pop: 20, Gens: 8, Seed: 3, Workers: 4}
		front, err := core.Proposed(inst, cfg, flib)
		if err != nil {
			t.Fatal(err)
		}
		return front.ObjectiveMatrix()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic front size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic front contents across full pipeline")
			}
		}
	}
}

func TestFullPipelineWithExtendedCatalog(t *testing.T) {
	inst, flib := buildInstance(t, 10, 7, relmodel.ExtendedCatalog())
	cfg := core.RunConfig{Pop: 20, Gens: 8, Seed: 11}
	front, err := core.Proposed(inst, cfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Points) == 0 {
		t.Fatal("extended-catalog DSE produced empty front")
	}
	// The richer catalog must enlarge the configuration space.
	if relmodel.ExtendedCatalog().NumConfigs(3) <= relmodel.DefaultCatalog().NumConfigs(3) {
		t.Fatal("extended catalog not larger than default")
	}
}

func TestCommAwareDSEEndToEnd(t *testing.T) {
	instFree, flib := buildInstance(t, 12, 9, relmodel.DefaultCatalog())
	instComm, _ := buildInstance(t, 12, 9, relmodel.DefaultCatalog())
	instComm.Comm = schedule.CommModel{StartupUS: 50, PerKBUS: 5}
	cfg := core.RunConfig{Pop: 20, Gens: 8, Seed: 13}
	free, err := core.Proposed(instFree, cfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := core.Proposed(instComm, cfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	minMk := func(f *core.Front) float64 {
		m := math.Inf(1)
		for _, p := range f.Points {
			m = math.Min(m, p.QoS.MakespanUS)
		}
		return m
	}
	if minMk(comm) < minMk(free)-1e-9 {
		t.Fatal("communication delays cannot shorten the best makespan")
	}
}

func TestFrontQoSConsistency(t *testing.T) {
	// Every front point's objective vector must match its decoded QoS, and
	// the front must be mutually non-dominated — across all strategies.
	inst, flib := buildInstance(t, 10, 21, relmodel.DefaultCatalog())
	cfg := core.RunConfig{Pop: 16, Gens: 6, Seed: 17}
	strategies := map[string]func() (*core.Front, error){
		"fcCLR":    func() (*core.Front, error) { return core.FcCLR(inst, cfg) },
		"pfCLR":    func() (*core.Front, error) { return core.PfCLR(inst, cfg, flib) },
		"proposed": func() (*core.Front, error) { return core.Proposed(inst, cfg, flib) },
	}
	for name, run := range strategies {
		front, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		objs := front.ObjectiveMatrix()
		if len(pareto.Filter(objs)) != len(objs) {
			t.Fatalf("%s: front contains dominated points", name)
		}
		for _, p := range front.Points {
			if p.Objectives[0] != p.QoS.MakespanUS || p.Objectives[1] != p.QoS.ErrProb {
				t.Fatalf("%s: objectives diverge from decoded QoS", name)
			}
		}
	}
}

func TestAnalyticalEstimatesSurviveFaultInjection(t *testing.T) {
	// Take one optimized Sobel mapping and verify its predicted functional
	// reliability against fault injection of the same CLR configuration.
	p := platform.Default()
	inst := &core.Instance{
		Graph:      taskgraph.Sobel(),
		Platform:   p,
		Lib:        characterize.Sobel(p),
		Catalog:    relmodel.DefaultCatalog(),
		Objectives: core.DefaultObjectives(),
	}
	front, err := core.FcCLR(inst, core.RunConfig{Pop: 20, Gens: 8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// Most reliable point.
	best := front.Points[0]
	for _, pt := range front.Points {
		if pt.QoS.ErrProb < best.QoS.ErrProb {
			best = pt
		}
	}
	// Rebuild the chain parameters per task from the genome and simulate.
	params := make([]relmodel.ChainParams, inst.Graph.NumTasks())
	asg := make([]faultsim.TaskAssignment, inst.Graph.NumTasks())
	pes := core.DecodePEs(inst, best.Genome)
	cat := inst.Catalog
	for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
		impl, a, err := core.DecodeConfig(inst, best.Genome, tsk)
		if err != nil {
			t.Fatal(err)
		}
		pt := p.Types()[impl.PETypeIndex]
		hw, ssw, asw := cat.HW[a.HW], cat.SSW[a.SSW], cat.ASW[a.ASW]
		exec := impl.Cycles / pt.Modes[a.Mode].FreqMHz * hw.TimeFactor * asw.TimeFactor
		n := float64(ssw.Checkpoints + 1)
		params[tsk] = relmodel.ChainParams{
			ExecTimeUS:            exec,
			LambdaPerUS:           pt.SEURate(a.Mode) / 1e6,
			Checkpoints:           ssw.Checkpoints,
			DetTimeUS:             ssw.DetectionTimeFrac * exec / n,
			TolTimeUS:             ssw.ToleranceTimeFrac * exec / n,
			ChkTimeUS:             ssw.CheckpointTimeFrac * exec,
			MHW:                   hw.Masking,
			MImplSSW:              impl.ImplicitMasking,
			CovDet:                ssw.DetectionCoverage,
			MTol:                  ssw.ToleranceCoverage,
			MASW:                  asw.Masking,
			ModelCheckpointErrors: true,
		}
		asg[tsk] = faultsim.TaskAssignment{PE: pes[tsk], Params: params[tsk]}
	}
	sim, err := faultsim.SimulateApp(inst.Graph, p.NumPEs(), best.Genome.Order, asg, 30000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sim.FunctionalRel - best.QoS.FunctionalRel); d > 0.01 {
		t.Fatalf("fault injection disagrees with analysis: simulated %v vs predicted %v",
			sim.FunctionalRel, best.QoS.FunctionalRel)
	}
}

func TestAllExtensionsTogether(t *testing.T) {
	// Extended catalog + communication model + storage constraints +
	// MOEA/D engine, end to end through the proposed methodology.
	p := platform.Default()
	inst := &core.Instance{
		Graph:         tgff.MustGenerate(tgff.DefaultConfig(10), 61),
		Platform:      p,
		Lib:           characterize.Synthetic(p, characterize.DefaultSyntheticConfig(10), 62),
		Catalog:       relmodel.ExtendedCatalog(),
		Objectives:    core.DefaultObjectives(),
		Comm:          schedule.CommModel{StartupUS: 100, PerKBUS: 10},
		EnforceMemory: true,
	}
	flib, err := tdse.Build(inst.Lib, p, inst.Catalog, tdse.DefaultOptions(),
		[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RunConfig{Pop: 20, Gens: 8, Seed: 63, Engine: core.MOEAD}
	front, err := core.Proposed(inst, cfg, flib)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Points) == 0 {
		t.Skip("no feasible point under tight memory at this seed")
	}
	for _, pt := range front.Points {
		if v := schedule.MemoryViolations(pt.QoS, p); len(v) != 0 {
			t.Fatalf("front point overflows memory: %v", v)
		}
	}
}

func TestFiveObjectiveDSE(t *testing.T) {
	// The full Eq. 5 objective set: makespan, error probability, lifetime,
	// energy, peak power — the front must be mutually non-dominated in 5-D
	// and its hypervolume computable.
	inst, flib := buildInstance(t, 10, 71, relmodel.DefaultCatalog())
	inst.Objectives = []core.SystemObjective{
		core.Makespan, core.AppErrProb, core.Lifetime, core.Energy, core.PeakPower,
	}
	front, err := core.Proposed(inst, core.RunConfig{Pop: 20, Gens: 8, Seed: 73}, flib)
	if err != nil {
		t.Fatal(err)
	}
	objs := front.ObjectiveMatrix()
	if len(objs) == 0 || len(objs[0]) != 5 {
		t.Fatalf("want 5-objective front, got %dx%d", len(objs), len(objs[0]))
	}
	if got := len(pareto.Filter(objs)); got != len(objs) {
		t.Fatal("5-objective front contains dominated points")
	}
	ref := pareto.ReferencePoint(0.1, objs)
	if hv := pareto.Hypervolume(objs, ref); hv <= 0 {
		t.Fatalf("5-D hypervolume = %v", hv)
	}
}
