// Command tdse runs the task-level design space exploration of one task
// type and prints the Pareto-filtered CLR-integrated implementations with
// their TABLE II metrics.
//
// Usage:
//
//	tdse [-app sobel|synthetic] [-type N] [-seed N]
//	     [-objectives avgext,errprob,mttf,energy,power,peaktemp,minext]
//	     [-mask F] [-all]
//
// -all prints the full enumeration instead of only the Pareto front;
// -mask overrides the implicit system-software masking (Fig. 6(b) style).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/characterize"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/tdse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tdse:", err)
		os.Exit(1)
	}
}

var objectiveNames = map[string]tdse.Objective{
	"avgext":   tdse.AvgExT,
	"errprob":  tdse.ErrProb,
	"mttf":     tdse.MTTF,
	"energy":   tdse.Energy,
	"power":    tdse.Power,
	"peaktemp": tdse.PeakTemp,
	"minext":   tdse.MinExT,
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tdse", flag.ContinueOnError)
	app := fs.String("app", "sobel", "characterization: sobel or synthetic")
	taskType := fs.Int("type", 0, "task type index to explore")
	seed := fs.Int64("seed", 1, "seed for synthetic characterizations")
	objs := fs.String("objectives", "avgext,errprob", "comma-separated objective list")
	mask := fs.Float64("mask", -1, "implicit masking override in [0,1) (negative = keep)")
	all := fs.Bool("all", false, "print the full enumeration, not just the front")
	catalogName := fs.String("catalog", "default", "reliability method catalog: default or extended")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := platform.Default()
	var lib *characterize.Library
	switch strings.ToLower(*app) {
	case "sobel":
		lib = characterize.Sobel(p)
	case "synthetic":
		lib = characterize.Synthetic(p, characterize.DefaultSyntheticConfig(10), *seed)
	default:
		return fmt.Errorf("unknown characterization %q", *app)
	}
	if *taskType < 0 || *taskType >= lib.NumTypes() {
		return fmt.Errorf("task type %d outside [0,%d)", *taskType, lib.NumTypes())
	}

	var objectives []tdse.Objective
	for _, name := range strings.Split(*objs, ",") {
		o, ok := objectiveNames[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return fmt.Errorf("unknown objective %q", name)
		}
		objectives = append(objectives, o)
	}

	opt := tdse.DefaultOptions()
	opt.ImplicitMaskingOverride = *mask
	var cat *relmodel.Catalog
	switch strings.ToLower(*catalogName) {
	case "default":
		cat = relmodel.DefaultCatalog()
	case "extended":
		cat = relmodel.ExtendedCatalog()
	default:
		return fmt.Errorf("unknown catalog %q", *catalogName)
	}
	cands, err := tdse.Enumerate(lib, *taskType, p, cat, opt)
	if err != nil {
		return err
	}
	front := tdse.Filter(cands, objectives)
	show := front
	if *all {
		show = cands
	}
	fmt.Fprintf(w, "task type %d: %d candidates enumerated, %d on the Pareto front (objectives: %s)\n",
		*taskType, len(cands), len(front), *objs)
	fmt.Fprintf(w, "%-28s %-22s %10s %10s %9s %12s %8s %7s\n",
		"implementation", "CLR config", "minExT(us)", "avgExT(us)", "errP(%)", "MTTF(h)", "W(W)", "T(C)")
	for _, c := range show {
		pt := p.Types()[c.Base.PETypeIndex]
		cfgStr := fmt.Sprintf("%s/%s/%s/%s",
			pt.Modes[c.Assignment.Mode].Name,
			cat.HW[c.Assignment.HW].Name,
			cat.SSW[c.Assignment.SSW].Name,
			cat.ASW[c.Assignment.ASW].Name)
		m := c.Metrics
		fmt.Fprintf(w, "%-28s %-22s %10.1f %10.1f %9.3f %12.4g %8.2f %7.1f\n",
			c.Base.Name, cfgStr, m.MinExTimeUS, m.AvgExTimeUS, m.ErrProb*100, m.MTTFHours, m.PowerW, m.TempC)
	}
	return nil
}
