package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "768 candidates enumerated") {
		t.Fatalf("expected full enumeration count, got:\n%s", out)
	}
	if !strings.Contains(out, "GScale") {
		t.Fatal("expected Sobel type-0 implementations in output")
	}
}

func TestRunObjectives(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-objectives", "avgext,errprob,mttf", "-type", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SobGrad") {
		t.Fatal("expected SobGrad implementations")
	}
}

func TestRunSynthetic(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "synthetic", "-type", "3", "-seed", "9"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SYN_3") {
		t.Fatal("expected synthetic type name")
	}
}

func TestRunMaskOverride(t *testing.T) {
	var with, without bytes.Buffer
	if err := run([]string{"-mask", "0.2"}, &with); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, &without); err != nil {
		t.Fatal(err)
	}
	if with.String() == without.String() {
		t.Fatal("masking override had no effect")
	}
}

func TestRunAllFlag(t *testing.T) {
	var all, front bytes.Buffer
	if err := run([]string{"-all"}, &all); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, &front); err != nil {
		t.Fatal(err)
	}
	if len(all.String()) <= len(front.String()) {
		t.Fatal("-all should print more rows than the front only")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "nonsense"}, &buf); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"-type", "99"}, &buf); err == nil {
		t.Error("out-of-range type accepted")
	}
	if err := run([]string{"-objectives", "bogus"}, &buf); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestRunExtendedCatalog(t *testing.T) {
	var def, ext bytes.Buffer
	if err := run(nil, &def); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-catalog", "extended"}, &ext); err != nil {
		t.Fatal(err)
	}
	// The extended catalog enumerates more candidates.
	if !strings.Contains(ext.String(), "3024 candidates enumerated") {
		t.Fatalf("extended enumeration count wrong:\n%s", ext.String()[:200])
	}
	if err := run([]string{"-catalog", "bogus"}, &ext); err == nil {
		t.Fatal("unknown catalog accepted")
	}
}
