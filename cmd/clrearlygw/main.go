// Command clrearlygw is the fleet control plane: an HTTP gateway fronting
// N clrearlyd workers that routes jobs content-addressed by spec hash (so
// the fleet shares one logical result cache), hands work out through
// pull-based TTL leases (workers run `clrearlyd -gateway URL`), and
// enforces per-tenant admission control — API keys, token-bucket rate
// limits, active-job quotas, priority classes with weighted-fair dequeue,
// and queue-depth backpressure answering 429 + Retry-After.
//
// Usage:
//
//	clrearlygw -tenants FILE [-addr :8081] [-worker-token TOK]
//	           [-store DIR] [-fsync always|interval|never]
//	           [-queue N] [-cache N] [-lease-ttl 15s] [-max-deliveries N]
//	           [-probe-every 5s] [-max-body N]
//
// The tenants file is JSON:
//
//	{"tenants": [
//	  {"name": "acme", "key": "acme-key-1", "rate_per_sec": 10,
//	   "burst": 20, "max_active": 8, "priority": "high"}
//	]}
//
// With -store the control plane is durable: admitted jobs are journaled
// before the 202 ack and finished fronts become the replicated result
// store, so a restarted gateway re-enqueues unfinished jobs and keeps
// serving cached results.
//
// The tenant-facing API mirrors clrearlyd's (POST/GET/DELETE /v1/jobs,
// /wait, /events SSE, /metrics), so existing clients work unchanged;
// requests authenticate with "X-API-Key: <key>" or a bearer token.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clrearlygw:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clrearlygw", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	tenantsFile := fs.String("tenants", "", "tenant config file (JSON); required")
	workerToken := fs.String("worker-token", "", "bearer token workers must present on the lease API; empty = open")
	storeDir := fs.String("store", "", "durable store directory (empty = in-memory only)")
	fsyncMode := fs.String("fsync", "always", "store fsync policy: always, interval or never")
	queueCap := fs.Int("queue", 256, "fleet-wide queued-job capacity; beyond it submissions get 429")
	cacheCap := fs.Int("cache", 256, "gateway-local LRU front-cache capacity")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "lease lifetime without renewal")
	maxDeliveries := fs.Int("max-deliveries", 5, "lease deliveries before a job is failed")
	probeEvery := fs.Duration("probe-every", 5*time.Second, "worker /healthz probe period (negative = disabled)")
	maxBody := fs.Int64("max-body", 1<<20, "tenant request body size cap in bytes")
	islandHub := fs.Bool("island-hub", true,
		"serve the island migration barrier at POST /v1/island/exchange (worker-token gated)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenantsFile == "" {
		return errors.New("no -tenants file; the gateway refuses to run without admission control")
	}
	raw, err := os.ReadFile(*tenantsFile)
	if err != nil {
		return err
	}
	tenants, err := gateway.ParseTenants(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", *tenantsFile, err)
	}

	cfg := gateway.Config{
		Tenants:          tenants,
		WorkerToken:      *workerToken,
		QueueCap:         *queueCap,
		CacheCap:         *cacheCap,
		LeaseTTL:         *leaseTTL,
		MaxDeliveries:    *maxDeliveries,
		ProbeEvery:       *probeEvery,
		MaxBodyBytes:     *maxBody,
		DisableIslandHub: !*islandHub,
	}
	if *storeDir != "" {
		policy, err := store.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		st, err := store.Open(*storeDir, store.Options{Sync: policy})
		if err != nil {
			return err
		}
		defer st.Close()
		cfg.Store = st
		stats := st.Stats()
		log.Printf("store %s opened (fsync=%s): %d jobs (%d pending), %d results",
			*storeDir, policy, stats.Jobs, stats.PendingJobs, stats.Results)
	}

	gw, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	defer gw.Close()
	hs := &http.Server{Handler: gw}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("clrearlygw listening on %s (tenants=%d queue=%d lease-ttl=%s)",
			ln.Addr(), len(tenants), *queueCap, *leaseTTL)
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("clrearlygw stopped")
	return nil
}
