// Command validate cross-checks every analytical early-stage estimator
// against simulation: the Markov reliability chains against Monte-Carlo
// fault injection (task level), the TABLE III estimators against
// event-driven application simulation, Eq. 2's lifetime model against
// Weibull damage-accumulation sampling, and the steady-state thermal bound
// against the transient RC trace. Exit status is non-zero if any check
// fails its tolerance.
//
// Usage:
//
//	validate [-trials N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/faultsim"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/thermal"
)

func main() {
	ok, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(2)
	}
}

func run(args []string, w io.Writer) (bool, error) {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	trials := fs.Int("trials", 40000, "simulation trials per check")
	seed := fs.Int64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	allOK := true
	check := func(name string, rel float64, tol float64) {
		status := "PASS"
		if math.Abs(rel) > tol || math.IsNaN(rel) {
			status = "FAIL"
			allOK = false
		}
		fmt.Fprintf(w, "  [%s] %-46s relative error %+.3f%% (tolerance ±%.1f%%)\n",
			status, name, rel*100, tol*100)
	}
	// Rare-event estimates compare against the sampling noise, not a fixed
	// relative tolerance: the check passes within 5 standard errors.
	checkSigma := func(name string, sim, ana, stderr float64) {
		status := "PASS"
		if math.Abs(sim-ana) > 5*stderr+1e-12 {
			status = "FAIL"
			allOK = false
		}
		fmt.Fprintf(w, "  [%s] %-46s simulated %.5g vs analytic %.5g (5σ = %.2g)\n",
			status, name, sim, ana, 5*stderr)
	}

	fmt.Fprintln(w, "Task-level: Markov chains vs fault injection")
	params := relmodel.ChainParams{
		ExecTimeUS: 1000, LambdaPerUS: 2e-4, Checkpoints: 2,
		DetTimeUS: 25, TolTimeUS: 20, ChkTimeUS: 30,
		MHW: 0.4, MImplSSW: 0.05, CovDet: 0.92, MTol: 0.98, MASW: 0.6,
		ModelCheckpointErrors: true,
	}
	ana, err := relmodel.AnalyzeChains(params)
	if err != nil {
		return false, err
	}
	sim, err := faultsim.SimulateTask(params, *trials, *seed)
	if err != nil {
		return false, err
	}
	check("average execution time", (sim.MeanTimeUS-ana.AvgExTimeUS)/ana.AvgExTimeUS, 0.01)
	checkSigma("error probability", sim.ErrProb, ana.ErrProb, sim.ErrProbStdErr)

	fmt.Fprintln(w, "System-level: TABLE III estimators vs event simulation (Sobel)")
	g := taskgraph.Sobel()
	p := platform.Default()
	asg := make([]faultsim.TaskAssignment, g.NumTasks())
	decisions := make([]schedule.TaskDecision, g.NumTasks())
	for t := range asg {
		asg[t] = faultsim.TaskAssignment{PE: t % 3, Params: params}
		decisions[t] = schedule.TaskDecision{
			PE: t % 3,
			Metrics: relmodel.Metrics{
				AvgExTimeUS: ana.AvgExTimeUS, MinExTimeUS: ana.MinExTimeUS,
				ErrProb: ana.ErrProb, PowerW: 1, MTTFHours: 1e5,
			},
		}
	}
	prio := g.TopoOrder()
	qos, err := schedule.Run(g, p, prio, decisions)
	if err != nil {
		return false, err
	}
	appSim, err := faultsim.SimulateApp(g, p.NumPEs(), prio, asg, *trials/2, *seed+1)
	if err != nil {
		return false, err
	}
	check("average makespan", (appSim.MeanMakespanUS-qos.MakespanUS)/qos.MakespanUS, 0.05)
	check("functional reliability", (appSim.FunctionalRel-qos.FunctionalRel)/qos.FunctionalRel, 0.01)

	fmt.Fprintln(w, "Lifetime: Eq. 2 vs Weibull damage-accumulation sampling")
	stress := faultsim.PEStress{
		PeriodUS: g.PeriodUS,
		Beta:     p.Types()[0].WeibullBeta,
		Entries: []faultsim.StressEntry{
			{ExTimeUS: 1500, EtaHours: 8e4},
			{ExTimeUS: 800, EtaHours: 6e4},
		},
	}
	anaMTTF, err := faultsim.AnalyticMTTFHours(stress)
	if err != nil {
		return false, err
	}
	life, err := faultsim.SimulateLifetime(stress, *trials, *seed+2)
	if err != nil {
		return false, err
	}
	check("system MTTF", (life.MeanHours-anaMTTF)/anaMTTF, 0.02)

	fmt.Fprintln(w, "Thermal: transient RC trace vs steady-state bound")
	trace, err := thermal.Simulate(g, p, decisions, qos, 5, 50)
	if err != nil {
		return false, err
	}
	violations := 0
	for pe := range trace.PeakC {
		if trace.PeakC[pe] > trace.SteadyPeakC[pe]+1e-9 {
			violations++
		}
	}
	status := "PASS"
	if violations > 0 {
		status = "FAIL"
		allOK = false
	}
	fmt.Fprintf(w, "  [%s] %-46s transient peaks within steady bounds on all %d PEs\n",
		status, "peak temperature bound", p.NumPEs())

	if allOK {
		fmt.Fprintln(w, "all checks passed")
	} else {
		fmt.Fprintln(w, "CHECKS FAILED")
	}
	return allOK, nil
}
