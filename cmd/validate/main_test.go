package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllChecksPass(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run([]string{"-trials", "20000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !ok {
		t.Fatalf("validation failed:\n%s", out)
	}
	if strings.Contains(out, "FAIL") || !strings.Contains(out, "all checks passed") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	for _, section := range []string{"Task-level", "System-level", "Lifetime", "Thermal"} {
		if !strings.Contains(out, section) {
			t.Fatalf("missing section %q", section)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := run([]string{"-trials", "5000", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-trials", "5000", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("validation output not deterministic for equal seeds")
	}
}
