// Command benchsnap converts `go test -bench` output on stdin into a
// machine-readable JSON snapshot: ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units, per benchmark. With -baseline it also embeds a prior
// run (bench text or a previous snapshot JSON) and the percent change per
// measure, so the perf trajectory across PRs is diffable by tooling instead
// of eyeballed from log files.
//
// With -compare it becomes a regression gate instead: the fresh run on
// stdin is diffed against the -baseline snapshot and the command exits
// non-zero if any shared benchmark slowed down by more than -max-time-pct
// percent ns/op or grew by more than -max-alloc-pct percent allocs/op.
//
// Usage:
//
//	go test -run '^$' -bench 'Sweep|Fig|Table' -benchmem -benchtime 1x . |
//	    benchsnap -o BENCH_PR4.json [-baseline old.txt|old.json]
//
//	go test -run '^$' -bench ... -benchmem . |
//	    benchsnap -compare -baseline BENCH_PR4.json [-max-time-pct 10] [-max-alloc-pct 10]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Measure holds the three standard -benchmem measures.
type Measure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Benchmark is one benchmark's snapshot entry.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	Measure
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Baseline   *Measure           `json:"baseline,omitempty"`
	VsBaseline map[string]float64 `json:"vs_baseline_pct,omitempty"`
}

// Snapshot is the full JSON document.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "prior run to compare against (bench text or snapshot JSON)")
	compare := flag.Bool("compare", false, "gate mode: exit non-zero when stdin regresses past the thresholds vs -baseline")
	maxTimePct := flag.Float64("max-time-pct", 10, "with -compare, max allowed ns/op increase in percent")
	maxAllocPct := flag.Float64("max-alloc-pct", 10, "with -compare, max allowed allocs/op increase in percent")
	flag.Parse()
	var err error
	if *compare {
		err = runCompare(os.Stdin, os.Stdout, *baseline, *maxTimePct, *maxAllocPct)
	} else {
		err = run(os.Stdin, *out, *baseline)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath, baselinePath string) error {
	snap, err := parseBenchText(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (expected `go test -bench` output)")
	}
	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		annotate(snap, base)
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(outPath, blob, 0o644)
}

// runCompare diffs the fresh run on stdin against the baseline snapshot and
// fails on any shared benchmark regressing past the thresholds. Benchmarks
// present on only one side are reported but never fail the gate, so the
// baseline does not have to be refreshed in the same change that adds or
// removes a benchmark.
func runCompare(in io.Reader, w io.Writer, baselinePath string, maxTimePct, maxAllocPct float64) error {
	if baselinePath == "" {
		return fmt.Errorf("-compare requires -baseline")
	}
	snap, err := parseBenchText(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (expected `go test -bench` output)")
	}
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var failures []string
	shared := 0
	for _, b := range snap.Benchmarks {
		m, ok := base[b.Name]
		if !ok {
			fmt.Fprintf(w, "  new    %-40s %12.0f ns/op (not in baseline)\n", b.Name, b.NsPerOp)
			continue
		}
		shared++
		timePct := pctChange(b.NsPerOp, m.NsPerOp)
		allocPct := pctChange(b.AllocsPerOp, m.AllocsPerOp)
		status := "ok"
		if timePct > maxTimePct || allocPct > maxAllocPct {
			status = "FAIL"
			failures = append(failures, b.Name)
		}
		fmt.Fprintf(w, "  %-6s %-40s time %+7.1f%% (%.0f -> %.0f ns/op)  allocs %+7.1f%% (%.0f -> %.0f)\n",
			status, b.Name, timePct, m.NsPerOp, b.NsPerOp, allocPct, m.AllocsPerOp, b.AllocsPerOp)
	}
	for name := range base {
		if !hasBench(snap, name) {
			fmt.Fprintf(w, "  gone   %-40s (baseline only)\n", name)
		}
	}
	if shared == 0 {
		return fmt.Errorf("no benchmarks shared with baseline %s", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past +%.0f%% time / +%.0f%% allocs vs %s: %s",
			len(failures), maxTimePct, maxAllocPct, baselinePath, strings.Join(failures, ", "))
	}
	fmt.Fprintf(w, "benchsnap: %d benchmarks within +%.0f%% time / +%.0f%% allocs of %s\n",
		shared, maxTimePct, maxAllocPct, baselinePath)
	return nil
}

// pctChange is the percent increase of cur over old; zero or missing old
// measures (e.g. a baseline captured without -benchmem) never flag.
func pctChange(cur, old float64) float64 {
	if old <= 0 {
		return 0
	}
	return 100 * (cur - old) / old
}

func hasBench(snap *Snapshot, name string) bool {
	for _, b := range snap.Benchmarks {
		if b.Name == name {
			return true
		}
	}
	return false
}

// parseBenchText reads standard testing-package benchmark output.
func parseBenchText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	// Repeated runs of one benchmark (`go test -count=N`, the Makefile's
	// best-of-N noise suppression) collapse to the fastest run: scheduler
	// preemption and VM CPU steal only ever add time, so the minimum is
	// the honest estimate of a benchmark's cost. Allocs/op and the custom
	// metrics are deterministic across runs, so taking the whole fastest
	// entry loses nothing.
	merged := snap.Benchmarks[:0]
	for _, b := range snap.Benchmarks {
		if n := len(merged); n > 0 && merged[n-1].Name == b.Name {
			if b.NsPerOp < merged[n-1].NsPerOp {
				merged[n-1] = b
			}
			continue
		}
		merged = append(merged, b)
	}
	snap.Benchmarks = merged
	return snap, nil
}

// parseBenchLine decodes one "BenchmarkName N value unit value unit ..." row.
func parseBenchLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q in %q: %w", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// loadBaseline reads a prior run: a snapshot JSON (first byte '{') or raw
// `go test -bench` text.
func loadBaseline(path string) (map[string]Measure, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap *Snapshot
	if trimmed := bytes.TrimSpace(blob); len(trimmed) > 0 && trimmed[0] == '{' {
		snap = &Snapshot{}
		if err := json.Unmarshal(trimmed, snap); err != nil {
			return nil, err
		}
	} else if snap, err = parseBenchText(bytes.NewReader(blob)); err != nil {
		return nil, err
	}
	out := make(map[string]Measure, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		out[b.Name] = b.Measure
	}
	return out, nil
}

// annotate attaches baseline measures and percent deltas to every benchmark
// the baseline also ran (negative = improvement).
func annotate(snap *Snapshot, base map[string]Measure) {
	for i := range snap.Benchmarks {
		b := &snap.Benchmarks[i]
		m, ok := base[b.Name]
		if !ok {
			continue
		}
		b.Baseline = &m
		b.VsBaseline = map[string]float64{}
		for _, d := range []struct {
			key      string
			cur, old float64
		}{
			{"ns_per_op", b.NsPerOp, m.NsPerOp},
			{"bytes_per_op", b.BytesPerOp, m.BytesPerOp},
			{"allocs_per_op", b.AllocsPerOp, m.AllocsPerOp},
		} {
			if d.old > 0 {
				b.VsBaseline[d.key] = round1(100 * (d.cur - d.old) / d.old)
			}
		}
	}
}

func round1(v float64) float64 {
	if v < 0 {
		return float64(int64(v*10-0.5)) / 10
	}
	return float64(int64(v*10+0.5)) / 10
}
