package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable5-8         	       1	 354450557 ns/op	        26.82 pct-improvement-10tasks	294583472 B/op	 1923686 allocs/op
BenchmarkFig9             	       1	 862140826 ns/op	691441536 B/op	 4531873 allocs/op
PASS
ok  	repro	5.489s
`

func TestParseBenchText(t *testing.T) {
	snap, err := parseBenchText(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Pkg != "repro" {
		t.Fatalf("header: %+v", snap)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks", len(snap.Benchmarks))
	}
	// Sorted by name; the -8 GOMAXPROCS suffix must be stripped.
	if snap.Benchmarks[1].Name != "BenchmarkTable5" {
		t.Fatalf("name %q", snap.Benchmarks[1].Name)
	}
	b := snap.Benchmarks[1]
	if b.NsPerOp != 354450557 || b.BytesPerOp != 294583472 || b.AllocsPerOp != 1923686 {
		t.Fatalf("measures: %+v", b)
	}
	if b.Metrics["pct-improvement-10tasks"] != 26.82 {
		t.Fatalf("custom metric: %+v", b.Metrics)
	}
}

// TestParseBenchTextBestOfN pins the -count=N collapse: repeated runs of
// one benchmark keep only the fastest entry (noise only adds time).
func TestParseBenchTextBestOfN(t *testing.T) {
	const repeated = `BenchmarkUpdateArchiveIncremental-8 	200	20795 ns/op	312 B/op	4 allocs/op
BenchmarkUpdateArchiveIncremental-8 	200	12543 ns/op	312 B/op	4 allocs/op
BenchmarkUpdateArchiveIncremental-8 	200	15940 ns/op	312 B/op	4 allocs/op
BenchmarkCrowding-8 	200	499 ns/op	0 B/op	0 allocs/op
`
	snap, err := parseBenchText(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 after merge", len(snap.Benchmarks))
	}
	if b := snap.Benchmarks[1]; b.NsPerOp != 12543 || b.AllocsPerOp != 4 {
		t.Fatalf("merged entry not the fastest run: %+v", b)
	}
}

func TestAnnotateAgainstTextBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	current := `BenchmarkTable5 	       1	 177225278 ns/op	147291736 B/op	  961843 allocs/op
`
	snap, err := parseBenchText(strings.NewReader(current))
	if err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	annotate(snap, base)
	b := snap.Benchmarks[0]
	if b.Baseline == nil || b.Baseline.AllocsPerOp != 1923686 {
		t.Fatalf("baseline not attached: %+v", b)
	}
	if got := b.VsBaseline["allocs_per_op"]; got != -50.0 {
		t.Fatalf("allocs delta %v, want -50.0", got)
	}
}

func TestCompareWithinThresholds(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	// 5% slower, fewer allocs, plus a benchmark the baseline lacks:
	// within the default 10% bounds, and new benchmarks never fail.
	current := `BenchmarkTable5 	       1	 372173084 ns/op	294583472 B/op	 1923686 allocs/op
BenchmarkFig9 	       1	 862140826 ns/op	691441536 B/op	 4531873 allocs/op
BenchmarkNewThing 	       1	 1000 ns/op	0 B/op	 0 allocs/op
`
	var out strings.Builder
	if err := runCompare(strings.NewReader(current), &out, basePath, 10, 10); err != nil {
		t.Fatalf("unexpected gate failure: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new    BenchmarkNewThing") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}
}

func TestCompareFailsOnTimeRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	current := `BenchmarkTable5 	       1	 531675835 ns/op	294583472 B/op	 1923686 allocs/op
`
	var out strings.Builder
	err := runCompare(strings.NewReader(current), &out, basePath, 10, 10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkTable5") {
		t.Fatalf("want time-regression failure naming BenchmarkTable5, got %v", err)
	}
	// The same run passes with a looser bound.
	if err := runCompare(strings.NewReader(current), &strings.Builder{}, basePath, 60, 10); err != nil {
		t.Fatalf("loose bound should pass: %v", err)
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	// Time flat, allocs +20%.
	current := `BenchmarkFig9 	       1	 862140826 ns/op	691441536 B/op	 5438247 allocs/op
`
	err := runCompare(strings.NewReader(current), &strings.Builder{}, basePath, 10, 10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFig9") {
		t.Fatalf("want alloc-regression failure naming BenchmarkFig9, got %v", err)
	}
}

func TestCompareRequiresSharedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	current := `BenchmarkUnrelated 	       1	 1000 ns/op	0 B/op	 0 allocs/op
`
	if err := runCompare(strings.NewReader(current), &strings.Builder{}, basePath, 10, 10); err == nil {
		t.Fatal("want failure when no benchmarks are shared with the baseline")
	}
}

func TestLoadBaselineJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "snap.json")
	if err := run(strings.NewReader(sample), out, ""); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(out)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := base["BenchmarkFig9"]; !ok || m.AllocsPerOp != 4531873 {
		t.Fatalf("round trip: %+v", base)
	}
}
