// Command clrearly runs the CL(R)Early system-level DSE end to end on one
// application and prints the resulting Pareto front with full QoS metrics.
//
// Usage:
//
//	clrearly [-app sobel|jpeg|synthetic] [-tasks N] [-method proposed|fcclr|pfclr|agnostic]
//	         [-pop N] [-gens N] [-seed N] [-engine nsga2|moead] [-json]
//	         [-max-makespan US] [-min-frel F] [-min-mttf H] [-max-energy UJ] [-max-power W]
//	         [-platform hmpsoc|fpga] [-catalog default|extended|fpga]
//	         [-faults model.json] [-ckpt-modes] [-ckpt-intervals 1,2]
//	         [-remote host:port,...]
//
// -remote offloads the run to one of the given clrearlyd workers (with
// retries, hedging and a transparent local fallback); the printed front is
// byte-identical to a local run either way.
//
// The synthetic application uses the TGFF-style generator over ten task
// types; sobel is the five-task edge-detection pipeline of the paper's
// Fig. 2(b). The flags are parsed into the same canonical job spec the
// clrearlyd service accepts, and -json emits the front in the service's
// wire format, so CLI and API output stay in lockstep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faultmodel"
	"repro/internal/gantt"
	"repro/internal/schedule"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clrearly:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("clrearly", flag.ContinueOnError)
	app := fs.String("app", "sobel", "application: sobel, jpeg or synthetic")
	graphFile := fs.String("graph-file", "", "load the application from a TGFF text file (overrides -app)")
	tasks := fs.Int("tasks", 20, "task count for synthetic applications")
	method := fs.String("method", "proposed", "DSE method: proposed, fcclr, pfclr or agnostic")
	pop := fs.Int("pop", 60, "GA population size")
	gens := fs.Int("gens", 40, "GA generations")
	seed := fs.Int64("seed", 1, "random seed")
	engine := fs.String("engine", "nsga2", "MOEA family: nsga2 or moead")
	maxMakespan := fs.Float64("max-makespan", 0, "makespan constraint in µs (0 = none)")
	minFRel := fs.Float64("min-frel", 0, "functional reliability constraint (0 = none)")
	minMTTF := fs.Float64("min-mttf", 0, "MTTF constraint in hours (0 = none)")
	maxEnergy := fs.Float64("max-energy", 0, "energy constraint in µJ (0 = none)")
	maxPower := fs.Float64("max-power", 0, "peak power constraint in W (0 = none)")
	catalog := fs.String("catalog", "default", "reliability method catalog: default, extended or fpga")
	platformName := fs.String("platform", "", "platform family: hmpsoc (default) or fpga")
	faultsFile := fs.String("faults", "", "JSON fault-model file activating the combined transient+permanent analysis")
	ckptModes := fs.Bool("ckpt-modes", false, "enumerate local/TMR checkpoint policies during tDSE (proposed/pfclr)")
	ckptIntervals := fs.String("ckpt-intervals", "", "comma-separated checkpoint counts for -ckpt-modes (default 2)")
	objectives := fs.String("objectives", "makespan,errprob",
		"comma-separated system objectives: makespan, errprob, lifetime, energy, power (Eq. 5)")
	commStartup := fs.Float64("comm-startup", 0, "interconnect transfer startup cost in µs (0 = comm-free model)")
	commPerKB := fs.Float64("comm-per-kb", 0, "interconnect cost per KB in µs")
	memory := fs.Bool("memory", false, "enforce per-PE local memory capacities")
	noDelta := fs.Bool("no-delta", false, "disable incremental delta evaluation (full re-evaluation of every offspring)")
	surrogate := fs.Bool("surrogate", false, "screen offspring with a cheap surrogate proxy before full evaluation (nsga2 only)")
	surrogateFrac := fs.Float64("surrogate-frac", 0,
		"fraction of each generation fully evaluated under -surrogate, in (0,1] (0 = default 0.5)")
	islands := fs.Int("islands", 0, "split each GA stage into this many cooperating islands (nsga2 only; 0/1 = single population)")
	migrationEvery := fs.Int("migration-every", 0, "generations between island migrant exchanges (required with -islands ≥ 2)")
	migrants := fs.Int("migrants", 0, "elites exchanged per island per epoch (0 = default 2)")
	converge := fs.Bool("converge", false, "stop GA stages early once the archive hypervolume plateaus (incompatible with -islands)")
	convergeWindow := fs.Int("converge-window", 0, "consecutive low-improvement generations that end a stage under -converge (0 = default 8)")
	convergeEps := fs.Float64("converge-eps", 0, "relative hypervolume-improvement threshold under -converge (0 = default 1e-3)")
	jsonOut := fs.Bool("json", false, "emit the front as JSON in the service wire format")
	ganttChart := fs.Bool("gantt", false, "render the most reliable mapping as a Gantt chart (proposed/fcclr only)")
	remote := fs.String("remote", "", "comma-separated clrearlyd worker addresses; offload the run with local fallback")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := service.JobSpec{
		App:               *app,
		Tasks:             *tasks,
		Method:            *method,
		Pop:               *pop,
		Gens:              *gens,
		Seed:              *seed,
		Engine:            *engine,
		Catalog:           *catalog,
		Objectives:        splitList(*objectives),
		CommStartupUS:     *commStartup,
		CommPerKBUS:       *commPerKB,
		EnforceMemory:     *memory,
		NoDelta:           *noDelta,
		Surrogate:         *surrogate,
		SurrogateFraction: *surrogateFrac,
		Islands:           *islands,
		MigrationEvery:    *migrationEvery,
		Migrants:          *migrants,
		Converge:          *converge,
		ConvergeWindow:    *convergeWindow,
		ConvergeEps:       *convergeEps,
		Constraints: service.Constraints{
			MaxMakespanUS:    *maxMakespan,
			MinFunctionalRel: *minFRel,
			MinMTTFHours:     *minMTTF,
			MaxEnergyUJ:      *maxEnergy,
			MaxPeakPowerW:    *maxPower,
		},
	}
	if *graphFile != "" {
		text, err := os.ReadFile(*graphFile)
		if err != nil {
			return err
		}
		spec.GraphText = string(text)
	}
	spec.Platform = *platformName
	spec.CkptModes = *ckptModes
	if *ckptIntervals != "" {
		for _, part := range splitList(*ckptIntervals) {
			var n int
			if _, err := fmt.Sscanf(part, "%d", &n); err != nil {
				return fmt.Errorf("-ckpt-intervals entry %q: %w", part, err)
			}
			spec.CkptIntervals = append(spec.CkptIntervals, n)
		}
	}
	if *faultsFile != "" {
		blob, err := os.ReadFile(*faultsFile)
		if err != nil {
			return err
		}
		m, err := faultmodel.Decode(blob)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", *faultsFile, err)
		}
		spec.Faults = m
	}
	if err := spec.Normalize(); err != nil {
		return err
	}
	if *ganttChart && spec.Method != "proposed" && spec.Method != "fcclr" {
		return fmt.Errorf("-gantt requires a full-configuration method (proposed or fcclr)")
	}
	if *ganttChart && *remote != "" {
		// Genomes do not travel on the wire, so a remote front cannot be
		// rendered as a schedule.
		return fmt.Errorf("-gantt requires a local run (drop -remote)")
	}

	inst, flib, err := service.Build(&spec)
	if err != nil {
		return err
	}
	if spec.Method == "proposed" && !*jsonOut {
		fcLog, pfLog := core.SearchSpaceLog10(inst, flib)
		fmt.Fprintf(w, "design space: fcCLR ≈ 10^%.0f points, pfCLR ≈ 10^%.0f points\n", fcLog, pfLog)
	}
	var front *core.Front
	if *remote != "" {
		// Dispatch through the federation machinery: retries, hedging and
		// a local fallback on the already-built instance make the output
		// byte-identical to a local run even if every worker dies.
		coord := dist.New(strings.Split(*remote, ","), dist.Options{})
		defer coord.Close()
		front, err = coord.RunOne(context.Background(), &spec, func() (*core.Front, error) {
			return service.ExecuteOn(context.Background(), inst, flib, &spec, nil)
		})
	} else {
		front, err = service.ExecuteOn(context.Background(), inst, flib, &spec, nil)
	}
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(service.FrontToWire(front))
	}

	fmt.Fprintf(w, "%s DSE of %q (%d tasks, %d PEs): %d Pareto points, %d evaluations\n",
		spec.Method, inst.Graph.Name, inst.Graph.NumTasks(), inst.Platform.NumPEs(),
		len(front.Points), front.Evaluations)
	pts := append([]core.Point(nil), front.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].QoS.MakespanUS < pts[j].QoS.MakespanUS })
	fmt.Fprintf(w, "%12s %12s %14s %12s %10s\n",
		"makespan(us)", "err-prob(%)", "MTTF(hours)", "energy(uJ)", "power(W)")
	for _, pt := range pts {
		q := pt.QoS
		fmt.Fprintf(w, "%12.1f %12.3f %14.3g %12.1f %10.2f\n",
			q.MakespanUS, q.ErrProb*100, q.MTTFHours, q.EnergyUJ, q.PeakPowerW)
	}

	if *ganttChart {
		best := front.Points[0]
		for _, pt := range front.Points {
			if pt.QoS.ErrProb < best.QoS.ErrProb {
				best = pt
			}
		}
		pes := core.DecodePEs(inst, best.Genome)
		decisions := make([]schedule.TaskDecision, inst.Graph.NumTasks())
		for t := range decisions {
			decisions[t].PE = pes[t]
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, gantt.Chart(inst.Graph, inst.Platform, decisions, best.QoS, 72))
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
