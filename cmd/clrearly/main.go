// Command clrearly runs the CL(R)Early system-level DSE end to end on one
// application and prints the resulting Pareto front with full QoS metrics.
//
// Usage:
//
//	clrearly [-app sobel|synthetic] [-tasks N] [-method proposed|fccLR|pfclr|agnostic]
//	         [-pop N] [-gens N] [-seed N]
//	         [-max-makespan US] [-min-frel F] [-min-mttf H] [-max-energy UJ] [-max-power W]
//
// The synthetic application uses the TGFF-style generator over ten task
// types; sobel is the five-task edge-detection pipeline of the paper's
// Fig. 2(b).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/characterize"
	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/platform"
	"repro/internal/relmodel"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/tdse"
	"repro/internal/tgff"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clrearly:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("clrearly", flag.ContinueOnError)
	app := fs.String("app", "sobel", "application: sobel, jpeg or synthetic")
	graphFile := fs.String("graph-file", "", "load the application from a TGFF text file (overrides -app)")
	tasks := fs.Int("tasks", 20, "task count for synthetic applications")
	method := fs.String("method", "proposed", "DSE method: proposed, fcclr, pfclr or agnostic")
	pop := fs.Int("pop", 60, "GA population size")
	gens := fs.Int("gens", 40, "GA generations")
	seed := fs.Int64("seed", 1, "random seed")
	maxMakespan := fs.Float64("max-makespan", 0, "makespan constraint in µs (0 = none)")
	minFRel := fs.Float64("min-frel", 0, "functional reliability constraint (0 = none)")
	minMTTF := fs.Float64("min-mttf", 0, "MTTF constraint in hours (0 = none)")
	maxEnergy := fs.Float64("max-energy", 0, "energy constraint in µJ (0 = none)")
	maxPower := fs.Float64("max-power", 0, "peak power constraint in W (0 = none)")
	catalog := fs.String("catalog", "default", "reliability method catalog: default or extended")
	objectives := fs.String("objectives", "makespan,errprob",
		"comma-separated system objectives: makespan, errprob, lifetime, energy, power (Eq. 5)")
	commStartup := fs.Float64("comm-startup", 0, "interconnect transfer startup cost in µs (0 = comm-free model)")
	commPerKB := fs.Float64("comm-per-kb", 0, "interconnect cost per KB in µs")
	memory := fs.Bool("memory", false, "enforce per-PE local memory capacities")
	ganttChart := fs.Bool("gantt", false, "render the most reliable mapping as a Gantt chart (proposed/fcclr only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := platform.Default()
	cat := relmodel.DefaultCatalog()
	switch strings.ToLower(*catalog) {
	case "default":
	case "extended":
		cat = relmodel.ExtendedCatalog()
	default:
		return fmt.Errorf("unknown catalog %q", *catalog)
	}
	objs, err := parseObjectives(*objectives)
	if err != nil {
		return err
	}
	inst := &core.Instance{
		Platform:      p,
		Catalog:       cat,
		Objectives:    objs,
		Comm:          schedule.CommModel{StartupUS: *commStartup, PerKBUS: *commPerKB},
		EnforceMemory: *memory,
		Spec: schedule.Spec{
			MaxMakespanUS:    *maxMakespan,
			MinFunctionalRel: *minFRel,
			MinMTTFHours:     *minMTTF,
			MaxEnergyUJ:      *maxEnergy,
			MaxPeakPowerW:    *maxPower,
		},
	}
	switch {
	case *graphFile != "":
		f, err := os.Open(*graphFile)
		if err != nil {
			return err
		}
		g, err := tgff.ParseText(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", *graphFile, err)
		}
		inst.Graph = g
		inst.Lib = characterize.Synthetic(p, characterize.DefaultSyntheticConfig(g.NumTypes()), *seed+500)
	case strings.ToLower(*app) == "sobel":
		inst.Graph = taskgraph.Sobel()
		inst.Lib = characterize.Sobel(p)
	case strings.ToLower(*app) == "jpeg":
		inst.Graph = taskgraph.JPEG()
		inst.Lib = characterize.JPEG(p)
	case strings.ToLower(*app) == "synthetic":
		inst.Graph = tgff.MustGenerate(tgff.DefaultConfig(*tasks), *seed)
		inst.Lib = characterize.Synthetic(p, characterize.DefaultSyntheticConfig(10), *seed+500)
	default:
		return fmt.Errorf("unknown application %q", *app)
	}

	cfg := core.RunConfig{Pop: *pop, Gens: *gens, Seed: *seed}
	var front *core.Front
	switch strings.ToLower(*method) {
	case "proposed":
		flib, ferr := tdse.Build(inst.Lib, p, inst.Catalog, tdse.DefaultOptions(),
			[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
		if ferr != nil {
			return ferr
		}
		fcLog, pfLog := core.SearchSpaceLog10(inst, flib)
		fmt.Fprintf(w, "design space: fcCLR ≈ 10^%.0f points, pfCLR ≈ 10^%.0f points\n", fcLog, pfLog)
		front, err = core.Proposed(inst, cfg, flib)
	case "fcclr":
		front, err = core.FcCLR(inst, cfg)
	case "pfclr":
		flib, ferr := tdse.Build(inst.Lib, p, inst.Catalog, tdse.DefaultOptions(),
			[]tdse.Objective{tdse.AvgExT, tdse.ErrProb})
		if ferr != nil {
			return ferr
		}
		front, err = core.PfCLR(inst, cfg, flib)
	case "agnostic":
		front, _, err = core.Agnostic(inst, cfg)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s DSE of %q (%d tasks, %d PEs): %d Pareto points, %d evaluations\n",
		*method, inst.Graph.Name, inst.Graph.NumTasks(), p.NumPEs(), len(front.Points), front.Evaluations)
	pts := append([]core.Point(nil), front.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].QoS.MakespanUS < pts[j].QoS.MakespanUS })
	fmt.Fprintf(w, "%12s %12s %14s %12s %10s\n",
		"makespan(us)", "err-prob(%)", "MTTF(hours)", "energy(uJ)", "power(W)")
	for _, pt := range pts {
		q := pt.QoS
		fmt.Fprintf(w, "%12.1f %12.3f %14.3g %12.1f %10.2f\n",
			q.MakespanUS, q.ErrProb*100, q.MTTFHours, q.EnergyUJ, q.PeakPowerW)
	}

	if *ganttChart {
		m := strings.ToLower(*method)
		if m != "proposed" && m != "fcclr" {
			return fmt.Errorf("-gantt requires a full-configuration method (proposed or fcclr)")
		}
		best := front.Points[0]
		for _, pt := range front.Points {
			if pt.QoS.ErrProb < best.QoS.ErrProb {
				best = pt
			}
		}
		pes := core.DecodePEs(inst, best.Genome)
		decisions := make([]schedule.TaskDecision, inst.Graph.NumTasks())
		for t := range decisions {
			decisions[t].PE = pes[t]
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, gantt.Chart(inst.Graph, p, decisions, best.QoS, 72))
	}
	return nil
}

var systemObjectiveNames = map[string]core.SystemObjective{
	"makespan": core.Makespan,
	"errprob":  core.AppErrProb,
	"lifetime": core.Lifetime,
	"energy":   core.Energy,
	"power":    core.PeakPower,
}

func parseObjectives(s string) ([]core.SystemObjective, error) {
	var out []core.SystemObjective
	for _, name := range strings.Split(s, ",") {
		o, ok := systemObjectiveNames[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return nil, fmt.Errorf("unknown system objective %q", name)
		}
		out = append(out, o)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two objectives, got %d", len(out))
	}
	return out, nil
}
