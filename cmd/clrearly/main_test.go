package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/service"
)

func small(extra ...string) []string {
	return append([]string{"-pop", "16", "-gens", "6"}, extra...)
}

func TestRunSobelProposed(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "proposed DSE of \"sobel\"") {
		t.Fatalf("unexpected header:\n%s", out)
	}
	if !strings.Contains(out, "design space: fcCLR") {
		t.Fatal("proposed run should report design-space sizes")
	}
	if !strings.Contains(out, "makespan(us)") {
		t.Fatal("missing metrics table")
	}
}

func TestRunSyntheticFcCLR(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small("-app", "synthetic", "-tasks", "10", "-method", "fcclr"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10 tasks") {
		t.Fatal("missing task count in output")
	}
}

func TestRunPfCLRAndAgnostic(t *testing.T) {
	for _, method := range []string{"pfclr", "agnostic"} {
		var buf bytes.Buffer
		if err := run(small("-method", method), &buf); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !strings.Contains(buf.String(), "Pareto points") {
			t.Fatalf("%s: missing front summary", method)
		}
	}
}

func TestRunWithConstraint(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small("-max-makespan", "2500", "-method", "fcclr"), &buf); err != nil {
		t.Fatal(err)
	}
	// All reported points must satisfy the constraint.
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || !strings.Contains(fields[0], ".") {
			continue
		}
		mk, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		if mk > 2500 {
			t.Fatalf("front point violates makespan constraint: %s", line)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small("-app", "bogus"), &buf); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run(small("-method", "bogus"), &buf); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunExtendedCatalog(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small("-catalog", "extended", "-method", "fcclr"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pareto points") {
		t.Fatal("missing front summary")
	}
	if err := run(small("-catalog", "bogus"), &buf); err == nil {
		t.Fatal("unknown catalog accepted")
	}
}

func TestRunCommAndMemoryFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(small("-method", "fcclr", "-comm-startup", "20", "-comm-per-kb", "2", "-memory"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pareto points") {
		t.Fatal("missing front summary")
	}
}

func TestRunGantt(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small("-gantt"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "schedule: makespan") {
		t.Fatal("Gantt chart missing")
	}
	if err := run(small("-gantt", "-method", "pfclr"), &buf); err == nil {
		t.Fatal("-gantt with pfclr should be rejected")
	}
}

func TestRunJPEG(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small("-app", "jpeg", "-method", "fcclr"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"jpeg\" (9 tasks") {
		t.Fatalf("unexpected header:\n%s", buf.String())
	}
}

func TestRunGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/app.tgff"
	src := "@TASK_GRAPH custom {\n" +
		"  PERIOD 50000\n" +
		"  TASK a\tTYPE 0\tCRITICALITY 1\n" +
		"  TASK b\tTYPE 1\tCRITICALITY 2\n" +
		"  TASK c\tTYPE 0\tCRITICALITY 1\n" +
		"  ARC a0\tFROM t0 TO t1\tDATA 8\n" +
		"  ARC a1\tFROM t1 TO t2\tDATA 8\n" +
		"}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(small("-graph-file", path, "-method", "fcclr"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"custom\" (3 tasks") {
		t.Fatalf("custom graph not loaded:\n%s", buf.String())
	}
	if err := run(small("-graph-file", dir+"/missing.tgff"), &buf); err == nil {
		t.Fatal("missing graph file accepted")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	// The -json output must be exactly the service wire form of the same
	// spec: decode the CLI's output, re-run the equivalent spec through
	// the service layer, and compare structs field for field. A re-encode
	// must also reproduce the decoded form byte for byte.
	var buf bytes.Buffer
	if err := run(small("-method", "fcclr", "-json"), &buf); err != nil {
		t.Fatal(err)
	}
	var got service.FrontWire
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("CLI -json output is not a wire front: %v\n%s", err, buf.String())
	}
	if len(got.Points) == 0 || got.Evaluations == 0 {
		t.Fatalf("empty front on the wire: %+v", got)
	}

	spec := service.JobSpec{App: "sobel", Method: "fcclr", Pop: 16, Gens: 6, Seed: 1}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	front, err := service.Execute(context.Background(), &spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := service.FrontToWire(front)
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("CLI -json front diverges from the service wire form:\ncli:  %+v\napi:  %+v", got, want)
	}

	re, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	var again service.FrontWire
	if err := json.Unmarshal(re, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("wire front does not survive a JSON round trip")
	}
}

func TestRunFiveObjectives(t *testing.T) {
	var buf bytes.Buffer
	err := run(small("-method", "fcclr",
		"-objectives", "makespan,errprob,lifetime,energy,power"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pareto points") {
		t.Fatal("missing front summary")
	}
	if err := run(small("-objectives", "makespan"), &buf); err == nil {
		t.Fatal("single objective accepted")
	}
	if err := run(small("-objectives", "makespan,bogus"), &buf); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestRunFPGAFaultModel(t *testing.T) {
	faults := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(faults, []byte(`{
  "default": {"permanent_per_hour": 200, "repair_prob": 0.6, "repair_time_us": 80},
  "per_type": {"fpga-fabric": {"transient_scale": 3, "permanent_per_hour": 400, "repair_prob": 0.8}}
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run(small("-method", "pfclr", "-platform", "fpga", "-catalog", "fpga",
		"-faults", faults, "-ckpt-modes", "-ckpt-intervals", "1,2"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pareto points") {
		t.Fatalf("missing front summary:\n%s", buf.String())
	}
}

func TestRunFaultFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(small("-platform", "asic"), &buf); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run(small("-faults", "/nonexistent/faults.json"), &buf); err == nil {
		t.Error("missing faults file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"default":{"transient_scale":-2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(small("-faults", bad), &buf); err == nil {
		t.Error("invalid fault model accepted")
	}
	if err := run(small("-method", "pfclr", "-ckpt-modes", "-ckpt-intervals", "x"), &buf); err == nil {
		t.Error("malformed -ckpt-intervals accepted")
	}
}
