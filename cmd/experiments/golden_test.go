package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the committed experiment goldens")

// legacyQuickExperiments is the full pre-fault-subsystem experiment list in
// registry order — everything -run all covered before ext-fpga existed.
const legacyQuickExperiments = "fig6a,fig6b,table4,fig7,table5,fig8,table6,fig9,fig10,table7," +
	"ablation-seeding,ablation-operators,ablation-comm,ablation-engine,ablation-heft," +
	"ext-scenario,ext-memory"

func goldenPath(name string) string { return filepath.Join("..", "..", "testdata", name) }

func runGolden(t *testing.T, name string, args []string) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(goldenPath(name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath(name))
		return
	}
	want, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gl, wl := strings.Split(buf.String(), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("output diverges from %s at line %d:\n got: %q\nwant: %q", name, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("output length differs from %s: got %d lines, want %d", name, len(gl), len(wl))
	}
}

// TestQuickLegacyGolden is the backward-compatibility gate of the
// fault-model subsystem: with every new axis off, the entire legacy quick
// experiment suite must stay byte-identical to the front captured before
// the subsystem existed. This golden is deliberately never regenerated.
func TestQuickLegacyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite in -short mode")
	}
	if *updateGolden {
		t.Skip("quick_pr10.golden is the pre-subsystem baseline and must not be rewritten")
	}
	runGolden(t, "quick_pr10.golden",
		[]string{"-quick", "-timing=false", "-run", legacyQuickExperiments})
}

// TestExtFPGAGolden pins the committed front of the FPGA fault-model
// extension study: three proposed-DSE regimes (SEU-only, combined
// transient+permanent, combined plus checkpoint axis) at the quick budget.
func TestExtFPGAGolden(t *testing.T) {
	runGolden(t, "ext_fpga_quick.golden",
		[]string{"-quick", "-timing=false", "-run", "ext-fpga"})
}
