// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows/series the paper
// reports (front point lists for figures, aligned tables for TABLEs).
//
// Usage:
//
//	experiments [-run all|fig6a,fig6b,table4,fig7,table5,fig8,table6,fig9,fig10,table7,
//	             ablation-seeding,ablation-operators,ablation-comm,ablation-engine,
//	             ablation-heft,ext-scenario,ext-memory,ext-fpga]
//	            [-pop N] [-gens N] [-seed N] [-sizes 10,20,...] [-quick] [-jobs N]
//	            [-cpuprofile file] [-memprofile file]
//
// -quick switches to a reduced GA budget and a short size sweep, useful for
// smoke-testing the full pipeline in under a minute.
//
// -jobs bounds how many experiment cells (strategy run × size × layer ×
// ablation arm) execute concurrently; 0 (the default) uses every core.
// Output is byte-identical for every -jobs value at a fixed -seed — only
// the per-experiment wall-clock in the section headers differs.
//
// -workers host:port,... federates the system-level experiment cells
// (fig7, table5, fig8, table6) across remote clrearlyd daemons. Remote
// runs rebuild the exact local instances from seeds and every failure
// falls back to local execution, so output is byte-identical to a local
// run for any worker set — including workers dying mid-sweep. Coordinator
// metrics are printed to stderr when the run finishes. Use -timing=false
// to drop wall-clock times from section headers when diffing runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type printable interface{ Print(io.Writer) }

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	quick := fs.Bool("quick", false, "reduced budget smoke run")
	pop := fs.Int("pop", 0, "GA population size (0 = default)")
	gens := fs.Int("gens", 0, "GA generations (0 = default)")
	seed := fs.Int64("seed", 0, "master seed (0 = default)")
	sizes := fs.String("sizes", "", "comma-separated task counts for the table sweeps")
	jobs := fs.Int("jobs", 0, "max concurrent experiment cells (0 = all cores, 1 = sequential)")
	jsonPath := fs.String("json", "", "also write all results as JSON to this file")
	workers := fs.String("workers", "", "comma-separated clrearlyd worker addresses for distributed sweeps")
	timing := fs.Bool("timing", true, "include wall-clock times in section headers")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	islands := fs.Int("islands", 0, "run every GA in island mode with this many islands (0 = single population)")
	migrationEvery := fs.Int("migration-every", 0, "generations between island migrant exchanges (with -islands)")
	migrants := fs.Int("migrants", 0, "elites exchanged per island per epoch (0 = default 2)")
	converge := fs.Bool("converge", false, "stop every GA stage early once its archive hypervolume plateaus (incompatible with -islands)")
	convergeWindow := fs.Int("converge-window", 0, "consecutive low-improvement generations that end a stage under -converge (0 = default 8)")
	convergeEps := fs.Float64("converge-eps", 0, "relative hypervolume-improvement threshold under -converge (0 = default 1e-3)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The cache and acceleration summaries go to stderr: stdout is
	// golden-compared across cache configurations and worker counts.
	// Registered before the profiling setup so the counters are reported
	// even when the run aborts on a profile error or mid-experiment.
	defer func() {
		t := core.FitnessCacheTotals()
		if t.Hits+t.Misses+t.Bypasses > 0 {
			fmt.Fprintf(os.Stderr, "fitness cache: %d hits, %d misses, %d bypasses, %d evictions (hit rate %.1f%%)\n",
				t.Hits, t.Misses, t.Bypasses, t.Evictions, 100*t.HitRate())
		}
		a := core.AccelTotals()
		if a.DeltaParentReuse+a.DeltaPrefixRuns+a.DeltaFullRuns+a.ProxyEvals+a.PairedSolves+a.SoloSolves > 0 {
			fmt.Fprintf(os.Stderr, "eval accel: delta %d reused / %d prefix / %d full, %d metrics reused, %d batch-warmed; surrogate %d proxied / %d screened out; chain solves %d paired / %d solo\n",
				a.DeltaParentReuse, a.DeltaPrefixRuns, a.DeltaFullRuns, a.MetricsReused, a.BatchWarmed,
				a.ProxyEvals, a.ScreenedOut, a.PairedSolves, a.SoloSolves)
		}
		s := core.SelectionTotals()
		if s.GenerationsRun > 0 {
			fmt.Fprintf(os.Stderr, "selection: %.2fs sorting, %.2fs archive; %d/%d generations run",
				float64(s.SortNanos)/1e9, float64(s.ArchiveNanos)/1e9, s.GenerationsRun, s.GenerationsBudget)
			if s.PlateauStops > 0 {
				fmt.Fprintf(os.Stderr, "; plateau stopped %d runs, saved %d generations (last hypervolume %.6g)",
					s.PlateauStops, s.GenerationsSaved, s.LastHypervolume)
			}
			fmt.Fprintln(os.Stderr)
		}
	}()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *pop > 0 {
		cfg.Pop = *pop
	}
	if *gens > 0 {
		cfg.Gens = *gens
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		cfg.Sizes = parsed
	}
	cfg.Jobs = *jobs
	cfg.Islands = *islands
	cfg.MigrationEvery = *migrationEvery
	cfg.Migrants = *migrants
	cfg.Converge = *converge
	cfg.ConvergeWindow = *convergeWindow
	cfg.ConvergeEps = *convergeEps
	if *workers != "" {
		coord := dist.New(strings.Split(*workers, ","), dist.Options{})
		defer func() {
			fmt.Fprint(os.Stderr, coord.Metrics())
			coord.Close()
		}()
		cfg.Remote = coord
	}

	type experiment struct {
		id  string
		run func() (printable, error)
	}
	all := []experiment{
		{"fig6a", func() (printable, error) { return cfg.Fig6a() }},
		{"fig6b", func() (printable, error) { return cfg.Fig6b() }},
		{"table4", func() (printable, error) { return cfg.Table4() }},
		{"fig7", func() (printable, error) { return cfg.Fig7() }},
		{"table5", func() (printable, error) { return cfg.Table5() }},
		{"fig8", func() (printable, error) { return cfg.Fig8() }},
		{"table6", func() (printable, error) { return cfg.Table6() }},
		{"fig9", func() (printable, error) { return cfg.Fig9() }},
		{"fig10", func() (printable, error) { return cfg.Fig10() }},
		{"table7", func() (printable, error) { return cfg.Table7() }},
		// Ablation studies beyond the paper's own evaluation (see DESIGN.md).
		{"ablation-seeding", func() (printable, error) { return cfg.AblationSeeding() }},
		{"ablation-operators", func() (printable, error) { return cfg.AblationOperators() }},
		{"ablation-comm", func() (printable, error) { return cfg.AblationComm() }},
		{"ablation-engine", func() (printable, error) { return cfg.AblationEngine() }},
		{"ablation-heft", func() (printable, error) { return cfg.AblationHEFT() }},
		{"ext-scenario", func() (printable, error) { return cfg.Scenario() }},
		{"ext-memory", func() (printable, error) { return cfg.Memory() }},
		{"ext-fpga", func() (printable, error) { return cfg.FPGA() }},
	}

	want := map[string]bool{}
	if *runList != "all" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			known := false
			for _, e := range all {
				if e.id == id {
					known = true
				}
			}
			if !known {
				return fmt.Errorf("unknown experiment %q", id)
			}
		}
	}

	collected := map[string]any{}
	for _, e := range all {
		if *runList != "all" && !want[e.id] {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if *timing {
			fmt.Fprintf(w, "== %s (%.1fs) ==\n", e.id, time.Since(start).Seconds())
		} else {
			fmt.Fprintf(w, "== %s ==\n", e.id)
		}
		res.Print(w)
		fmt.Fprintln(w)
		collected[e.id] = res
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding results: %w", err)
		}
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
		fmt.Fprintf(w, "results written to %s\n", *jsonPath)
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
