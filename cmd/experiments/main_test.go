package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("parseSizes = %v", got)
	}
	if _, err := parseSizes("10,x"); err == nil {
		t.Error("non-numeric size accepted")
	}
	if _, err := parseSizes("0"); err == nil {
		t.Error("zero size accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "fig6a"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== fig6a") || !strings.Contains(out, "Fig. 6(a)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "TABLE IV") {
		t.Fatal("unselected experiment ran")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "fig6b,table4", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 6(b)") || !strings.Contains(out, "TABLE IV") {
		t.Fatalf("missing selected experiments:\n%s", out)
	}
}

func TestRunTableWithCustomSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "table6", "-sizes", "10", "-pop", "16", "-gens", "6"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE VI") {
		t.Fatal("missing TABLE VI output")
	}
}

func TestRunWithJobs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "fig9", "-jobs", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Fatal("missing Fig. 9 output")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sizes", "abc"}, &buf); err == nil {
		t.Fatal("bad sizes accepted")
	}
}

// workerProc is an in-process clrearlyd worker for the distributed golden
// test: a real service.Server behind httptest, killable (502 + running
// jobs aborted) and resurrectable behind the same URL.
type workerProc struct {
	srv *httptest.Server

	mu      sync.Mutex
	inner   *service.Server
	submits int
	// killAtSubmit kills the worker right after it accepts the n-th job
	// (1-based); 0 disables.
	killAtSubmit int
}

func newWorkerProc(t *testing.T) *workerProc {
	t.Helper()
	p := &workerProc{inner: service.New(service.Config{Workers: 2})}
	p.srv = httptest.NewServer(p)
	t.Cleanup(func() {
		p.kill()
		p.srv.Close()
	})
	return p
}

func (p *workerProc) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	inner := p.inner
	kill := false
	if inner != nil && r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		p.submits++
		kill = p.killAtSubmit > 0 && p.submits == p.killAtSubmit
	}
	p.mu.Unlock()
	if inner == nil {
		http.Error(w, "worker down", http.StatusBadGateway)
		return
	}
	inner.ServeHTTP(w, r)
	if kill {
		p.kill()
	}
}

func (p *workerProc) kill() {
	p.mu.Lock()
	inner := p.inner
	p.inner = nil
	p.mu.Unlock()
	if inner != nil {
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		inner.Shutdown(expired)
	}
}

func (p *workerProc) resurrect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inner == nil {
		p.inner = service.New(service.Config{Workers: 2})
	}
}

// TestDistributedRunMatchesLocalGolden pins the federation guarantee end
// to end: the full CLI output of a distributed -quick sweep over two
// in-process workers — one of which is killed right after accepting its
// first job and resurrected mid-sweep — is byte-identical to the purely
// local -jobs 4 run of the same arguments.
func TestDistributedRunMatchesLocalGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed golden test runs the sweep twice")
	}
	args := []string{"-quick", "-timing=false", "-seed", "7",
		"-run", "fig7,table5,fig8", "-sizes", "10,12", "-jobs", "4"}

	var local bytes.Buffer
	if err := run(args, &local); err != nil {
		t.Fatal(err)
	}

	w0, w1 := newWorkerProc(t), newWorkerProc(t)
	w1.killAtSubmit = 1
	revive := time.AfterFunc(3*time.Second, w1.resurrect)
	defer revive.Stop()

	var dist bytes.Buffer
	if err := run(append(args, "-workers", w0.srv.URL+","+w1.srv.URL), &dist); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), dist.Bytes()) {
		t.Fatalf("distributed output differs from local run:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.Bytes(), dist.Bytes())
	}
	w1.mu.Lock()
	w1submits := w1.submits
	w1.mu.Unlock()
	if w1submits == 0 {
		t.Fatal("worker kill path not exercised: w1 never accepted a job")
	}
}

func TestRunJSONExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/results.json"
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "table4", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := decoded["table4"]; !ok {
		t.Fatal("JSON missing table4 result")
	}
}
