package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("parseSizes = %v", got)
	}
	if _, err := parseSizes("10,x"); err == nil {
		t.Error("non-numeric size accepted")
	}
	if _, err := parseSizes("0"); err == nil {
		t.Error("zero size accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "fig6a"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== fig6a") || !strings.Contains(out, "Fig. 6(a)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "TABLE IV") {
		t.Fatal("unselected experiment ran")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "fig6b,table4", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 6(b)") || !strings.Contains(out, "TABLE IV") {
		t.Fatalf("missing selected experiments:\n%s", out)
	}
}

func TestRunTableWithCustomSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "table6", "-sizes", "10", "-pop", "16", "-gens", "6"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE VI") {
		t.Fatal("missing TABLE VI output")
	}
}

func TestRunWithJobs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "fig9", "-jobs", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Fatal("missing Fig. 9 output")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sizes", "abc"}, &buf); err == nil {
		t.Fatal("bad sizes accepted")
	}
}

func TestRunJSONExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/results.json"
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "table4", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := decoded["table4"]; !ok {
		t.Fatal("JSON missing table4 result")
	}
}
