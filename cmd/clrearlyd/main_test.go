package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// The crash-injection harness re-executes the test binary as a real daemon
// process (the classic helper-process pattern): TestHelperDaemon is not a
// test but the daemon's main, entered only when the guard variable is set.
const helperEnv = "CLREARLYD_TEST_HELPER"

func TestHelperDaemon(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process entry point, not a test")
	}
	// Everything after "--" in the test invocation are daemon flags.
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, "clrearlyd:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemon is one spawned clrearlyd helper process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port, parsed from the startup log line
}

// startDaemon spawns the helper on an ephemeral port with the given store
// directory and waits for its "listening on" log line.
func startDaemon(t *testing.T, storeDir string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperDaemon", "--",
		"-addr", "127.0.0.1:0", "-workers", "1",
		"-store", storeDir, "-fsync", "interval", "-checkpoint-every", "2")
	cmd.Env = append(os.Environ(), helperEnv+"=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})

	// The daemon logs "clrearlyd listening on 127.0.0.1:PORT (...)" once
	// the listener is bound; everything else on stderr is drained so the
	// child never blocks on a full pipe.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrc <- rest:
				default:
				}
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr := <-addrc:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never logged its listen address")
	}
	return d
}

// sigkill terminates the daemon the hard way and reaps it.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

func (d *daemon) getJob(t *testing.T, id string) *service.JobWire {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jw service.JobWire
	if err := json.NewDecoder(resp.Body).Decode(&jw); err != nil {
		t.Fatalf("decoding job %s: %v", id, err)
	}
	return &jw
}

// TestSIGKILLRecovery is the end-to-end crash test of the durable daemon:
// a real process is killed with SIGKILL mid-evolution, restarted on the
// same store, and must finish the interrupted job with a Pareto front
// byte-identical to an uninterrupted in-process run.
func TestSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	// Large enough that SIGKILL lands mid-run (the GA clears hundreds of
	// sobel generations per second), small enough to finish promptly when
	// resumed.
	spec := service.JobSpec{App: "sobel", Method: "proposed", Pop: 16, Gens: 1200, Seed: 5}
	ref := spec
	if err := ref.Normalize(); err != nil {
		t.Fatal(err)
	}
	front, err := service.Execute(context.Background(), &ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(service.FrontToWire(front))
	if err != nil {
		t.Fatal(err)
	}

	storeDir := t.TempDir()
	d1 := startDaemon(t, storeDir)

	blob, _ := json.Marshal(spec)
	resp, err := http.Post(d1.base+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var jw service.JobWire
	if err := json.NewDecoder(resp.Body).Decode(&jw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, jw.Error)
	}

	// Let the run get past a few durable checkpoints, then SIGKILL.
	deadline := time.Now().Add(60 * time.Second)
	for {
		got := d1.getJob(t, jw.ID)
		if got.State == service.StateDone {
			t.Fatal("job finished before SIGKILL — raise Gens")
		}
		if got.Progress != nil && got.Progress.Generation >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.sigkill(t)

	// The restarted daemon recovers the journal, re-enqueues the job
	// under its original ID and resumes it from the last checkpoint.
	d2 := startDaemon(t, storeDir)
	deadline = time.Now().Add(120 * time.Second)
	var final *service.JobWire
	for {
		got := d2.getJob(t, jw.ID)
		if got.State == service.StateDone || got.State == service.StateFailed ||
			got.State == service.StateCancelled {
			final = got
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished: %+v", got)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != service.StateDone {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	if final.Cached {
		t.Fatal("resumed job was served from cache, not resumed")
	}
	got, err := json.Marshal(final.Front)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("front after SIGKILL recovery differs from uninterrupted run")
	}
}
