// Command clrearlyd serves CL(R)Early DSE as a long-running HTTP service:
// jobs are submitted as JSON specs, queued into a bounded FIFO, run by a
// worker pool whose GAs share the process-wide CPU-token budget, and
// streamed back as generation-by-generation SSE progress plus a typed
// Pareto front. Identical specs are served from an LRU result cache.
//
// Usage:
//
//	clrearlyd [-addr :8080] [-workers N] [-queue N] [-cache N] [-drain 30s]
//	          [-store DIR] [-fsync always|interval|never] [-checkpoint-every K]
//	          [-pprof addr] [-worker-token TOK] [-max-body N]
//	          [-gateway URL] [-worker-name NAME]
//
// With -gateway the daemon additionally joins a clrearlygw fleet: it
// long-polls the gateway for job leases, executes them locally, and
// streams progress and results back, while still serving its own API.
// -worker-token then does double duty — it locks the local job API and
// authenticates the agent to the gateway.
//
// With -store the daemon is durable: accepted jobs and finished results are
// journaled to a write-ahead log under DIR, GA runs checkpoint every K
// generations, and a restart re-enqueues unfinished jobs (resuming them
// mid-evolution) and re-serves cached results — a crash loses no
// acknowledged work.
//
// API:
//
//	POST   /v1/jobs             submit a job spec, returns the job status
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status (+ Pareto front when done)
//	GET    /v1/jobs/{id}/wait   long-poll job status (?timeout=30s), used
//	                            by the distributed sweep coordinator
//	GET    /v1/jobs/{id}/events SSE stream of per-generation progress
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /healthz             liveness probe
//	GET    /metrics             jobs by state, queue depth, result- and
//	                            fitness-cache hit rates, per-method
//	                            latency histograms, store gauges
//
// -pprof serves net/http/pprof (goroutine, heap, CPU profiles) on a
// separate address, e.g. -pprof localhost:6060; off by default so
// profiling endpoints are never exposed unintentionally.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gateway"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clrearlyd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clrearlyd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 2, "concurrent job runners (their GAs share the CPU-token pool)")
	queueCap := fs.Int("queue", 64, "queued-job capacity; beyond it submissions get 503")
	cacheCap := fs.Int("cache", 128, "LRU result-cache capacity (fronts)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for running jobs")
	storeDir := fs.String("store", "", "durable store directory (empty = in-memory only)")
	fsyncMode := fs.String("fsync", "always", "store fsync policy: always, interval or never")
	ckptEvery := fs.Int("checkpoint-every", core.DefaultCheckpointEvery,
		"GA generations between durable run checkpoints (with -store)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	workerToken := fs.String("worker-token", "",
		"bearer token required on the job API (and presented to -gateway); empty = open")
	maxBody := fs.Int64("max-body", 1<<20, "POST /v1/jobs body size cap in bytes (negative = unbounded)")
	gatewayURL := fs.String("gateway", "",
		"lease work from this clrearlygw gateway in addition to serving the local API")
	workerName := fs.String("worker-name", "", "worker name advertised to the gateway (default host:pid)")
	islandHub := fs.Bool("island-hub", false,
		"serve the island migration barrier at POST /v1/island/exchange (for coordinator-driven multi-daemon island runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		// The pprof mux is the package's DefaultServeMux registration;
		// serving it on its own listener keeps the job API surface clean.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	cfg := service.Config{
		QueueCap:        *queueCap,
		Workers:         *workers,
		CacheCap:        *cacheCap,
		CheckpointEvery: *ckptEvery,
		AuthToken:       *workerToken,
		MaxBodyBytes:    *maxBody,
	}
	if *islandHub {
		hub := dist.NewMigrationHub()
		defer hub.Close()
		cfg.IslandHub = hub
		log.Printf("island migration hub enabled at POST /v1/island/exchange")
	}
	if *storeDir != "" {
		policy, err := store.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		st, err := store.Open(*storeDir, store.Options{Sync: policy})
		if err != nil {
			return err
		}
		defer st.Close()
		cfg.Store = st
		stats := st.Stats()
		log.Printf("store %s opened (fsync=%s): %d jobs (%d pending), %d results, %d checkpoints",
			*storeDir, policy, stats.Jobs, stats.PendingJobs, stats.Results, stats.Checkpoints)
	}

	svc := service.New(cfg)
	hs := &http.Server{Handler: svc}

	// An explicit listener (rather than ListenAndServe) reports the bound
	// address, so ":0" works for tests and scripts that parse the log line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var agent *gateway.Agent
	if *gatewayURL != "" {
		name := *workerName
		if name == "" {
			host, _ := os.Hostname()
			name = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		agent, err = gateway.NewAgent(gateway.AgentConfig{
			Gateway: *gatewayURL,
			Token:   *workerToken,
			Name:    name,
			Addr:    "http://" + ln.Addr().String(),
		})
		if err != nil {
			return err
		}
		go func() {
			log.Printf("leasing work from gateway %s as %q", *gatewayURL, name)
			agent.Run(ctx)
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("clrearlyd listening on %s (workers=%d queue=%d cache=%d)",
			ln.Addr(), *workers, *queueCap, *cacheCap)
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining running jobs (deadline %s)", *drain)
	if agent != nil {
		agent.Stop() // abandon any held lease so the gateway redelivers it
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(shCtx); err != nil {
		log.Printf("job drain hit deadline; running jobs were cancelled (checkpointed runs resume on restart)")
	}
	log.Printf("clrearlyd stopped")
	return nil
}
