// Command clrearlyd serves CL(R)Early DSE as a long-running HTTP service:
// jobs are submitted as JSON specs, queued into a bounded FIFO, run by a
// worker pool whose GAs share the process-wide CPU-token budget, and
// streamed back as generation-by-generation SSE progress plus a typed
// Pareto front. Identical specs are served from an LRU result cache.
//
// Usage:
//
//	clrearlyd [-addr :8080] [-workers N] [-queue N] [-cache N] [-drain 30s]
//	          [-pprof addr]
//
// API:
//
//	POST   /v1/jobs             submit a job spec, returns the job status
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status (+ Pareto front when done)
//	GET    /v1/jobs/{id}/wait   long-poll job status (?timeout=30s), used
//	                            by the distributed sweep coordinator
//	GET    /v1/jobs/{id}/events SSE stream of per-generation progress
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /healthz             liveness probe
//	GET    /metrics             jobs by state, queue depth, result- and
//	                            fitness-cache hit rates, per-method
//	                            latency histograms
//
// -pprof serves net/http/pprof (goroutine, heap, CPU profiles) on a
// separate address, e.g. -pprof localhost:6060; off by default so
// profiling endpoints are never exposed unintentionally.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clrearlyd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clrearlyd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 2, "concurrent job runners (their GAs share the CPU-token pool)")
	queueCap := fs.Int("queue", 64, "queued-job capacity; beyond it submissions get 503")
	cacheCap := fs.Int("cache", 128, "LRU result-cache capacity (fronts)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for running jobs")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		// The pprof mux is the package's DefaultServeMux registration;
		// serving it on its own listener keeps the job API surface clean.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	svc := service.New(service.Config{
		QueueCap: *queueCap,
		Workers:  *workers,
		CacheCap: *cacheCap,
	})
	hs := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("clrearlyd listening on %s (workers=%d queue=%d cache=%d)",
			*addr, *workers, *queueCap, *cacheCap)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining running jobs (deadline %s)", *drain)
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(shCtx); err != nil {
		log.Printf("job drain hit deadline; running jobs were cancelled")
	}
	log.Printf("clrearlyd stopped")
	return nil
}
