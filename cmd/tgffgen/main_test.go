package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTextFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tasks", "6", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@TASK_GRAPH") || !strings.Contains(out, "PERIOD") {
		t.Fatalf("unexpected text output:\n%s", out)
	}
	if strings.Count(out, "TASK ") != 6 {
		t.Fatalf("want 6 TASK lines, got %d", strings.Count(out, "TASK "))
	}
}

func TestRunDotFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tasks", "5", "-format", "dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "->") {
		t.Fatalf("unexpected dot output:\n%s", out)
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-format", "yaml"}, &buf); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tasks", "0"}, &buf); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-tasks", "10", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-tasks", "10", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRunStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tasks", "12", "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "12 tasks") || !strings.Contains(out, "depth") {
		t.Fatalf("stats output wrong:\n%s", out)
	}
}
