package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultmodel"
	"repro/internal/service"
	"repro/internal/tgff"
)

// suiteClasses are the mixed-criticality classes a suite cycles through.
// Each class binds a scenario: the platform family, the fault environment
// and the DSE method a deployment of that criticality would use.
var suiteClasses = []string{"safety-critical", "mission", "best-effort"}

// suiteApp is one generated application in the manifest, with its
// structural golden metrics and the result-cache key of its job spec.
type suiteApp struct {
	Name  string `json:"name"`
	File  string `json:"file"`
	Job   string `json:"job"`
	Class string `json:"class"`

	Tasks       int     `json:"tasks"`
	Edges       int     `json:"edges"`
	Types       int     `json:"types"`
	Depth       int     `json:"depth"`
	MaxWidth    int     `json:"max_width"`
	TotalEdgeKB float64 `json:"total_edge_kb"`

	// SpecHash is sha256(normalized JobSpec) — the key under which every
	// daemon/gateway tier caches this app's result.
	SpecHash string `json:"spec_hash"`
}

// suiteManifest is the committed index of one generated corpus.
type suiteManifest struct {
	Seed int64      `json:"seed"`
	Apps []suiteApp `json:"apps"`
}

// classSpec builds the ready-to-submit job spec of one criticality class.
// Safety-critical apps target the FPGA family under a combined
// transient+permanent model with the checkpoint axis on; mission apps keep
// the HMPSoC but fly a harsher transient environment; best-effort apps are
// plain legacy SEU-only runs.
func classSpec(class, graphText string, seed int64) service.JobSpec {
	spec := service.JobSpec{
		GraphText: graphText,
		Seed:      seed,
		Pop:       32,
		Gens:      20,
	}
	switch class {
	case "safety-critical":
		spec.Method = "pfclr"
		spec.Platform = "fpga"
		spec.Catalog = "fpga"
		spec.Faults = &faultmodel.Model{
			Default: faultmodel.FaultModel{PermanentPerHour: 100, RepairProb: 0.7, RepairTimeUS: 100},
		}
		spec.CkptModes = true
		spec.CkptIntervals = []int{1, 2}
		spec.Constraints.MinFunctionalRel = 0.95
	case "mission":
		spec.Method = "proposed"
		spec.Faults = &faultmodel.Model{
			Default: faultmodel.FaultModel{TransientScale: 10, IntermittentPerSec: 1, IntermittentBurst: 2},
		}
	default: // best-effort: the pre-subsystem engine, untouched knobs
		spec.Method = "fcclr"
	}
	return spec
}

// generateSuite emits a deterministic multi-app mixed-criticality corpus
// into dir: per app a TGFF graph file, a normalized job-spec JSON, and one
// manifest.json with the structural golden metrics and spec hashes.
func generateSuite(dir string, apps int, seed int64) (*suiteManifest, error) {
	if apps <= 0 {
		return nil, fmt.Errorf("suite needs a positive app count, got %d", apps)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &suiteManifest{Seed: seed}
	for i := 0; i < apps; i++ {
		appSeed := seed + int64(i)*1000
		// Sizes climb through the suite so one corpus spans paper-scale
		// (tens of tasks) to stress-scale applications deterministically.
		tasks := 10 + 7*i
		cfg := tgff.DefaultConfig(tasks)
		g, err := tgff.Generate(cfg, appSeed)
		if err != nil {
			return nil, fmt.Errorf("app %d: %w", i, err)
		}
		var text strings.Builder
		if err := tgff.WriteText(&text, g); err != nil {
			return nil, fmt.Errorf("app %d: %w", i, err)
		}
		class := suiteClasses[i%len(suiteClasses)]
		spec := classSpec(class, text.String(), appSeed)
		if err := spec.Normalize(); err != nil {
			return nil, fmt.Errorf("app %d spec: %w", i, err)
		}
		specBlob, err := json.MarshalIndent(&spec, "", "  ")
		if err != nil {
			return nil, err
		}

		base := fmt.Sprintf("app_%02d_%s", i, class)
		graphFile := base + ".tgff"
		jobFile := base + ".job.json"
		if err := os.WriteFile(filepath.Join(dir, graphFile), []byte(text.String()), 0o644); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, jobFile), append(specBlob, '\n'), 0o644); err != nil {
			return nil, err
		}

		totalKB := 0.0
		for _, e := range g.Edges() {
			totalKB += e.DataKB
		}
		man.Apps = append(man.Apps, suiteApp{
			Name:        g.Name,
			File:        graphFile,
			Job:         jobFile,
			Class:       class,
			Tasks:       g.NumTasks(),
			Edges:       len(g.Edges()),
			Types:       g.NumTypes(),
			Depth:       g.Depth(),
			MaxWidth:    g.MaxWidth(),
			TotalEdgeKB: totalKB,
			SpecHash:    spec.Hash(),
		})
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(blob, '\n'), 0o644); err != nil {
		return nil, err
	}
	return man, nil
}
