// Command tgffgen generates a synthetic task graph (the offline substitute
// for the TGFF tool, §VI.A) and prints it in a TGFF-like text form or as
// Graphviz DOT.
//
// Usage:
//
//	tgffgen [-tasks N] [-types N] [-width N] [-indeg N] [-seed N] [-format text|dot]
//	tgffgen -suite -out DIR [-apps N] [-seed N]
//
// -suite emits a deterministic multi-app mixed-criticality scenario corpus:
// per application a TGFF graph file and a ready-to-submit clrearlyd job spec
// (cycling safety-critical FPGA / mission / best-effort classes), plus a
// manifest.json with structural metrics and the specs' result-cache hashes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/taskgraph"
	"repro/internal/tgff"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tgffgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tgffgen", flag.ContinueOnError)
	tasks := fs.Int("tasks", 20, "number of tasks")
	types := fs.Int("types", 10, "number of task types")
	width := fs.Int("width", 0, "average layer width (0 = auto)")
	indeg := fs.Int("indeg", 3, "maximum in-degree")
	seed := fs.Int64("seed", 1, "random seed")
	format := fs.String("format", "text", "output format: text or dot")
	stats := fs.Bool("stats", false, "print structural statistics instead of the graph")
	suite := fs.Bool("suite", false, "generate a multi-app mixed-criticality scenario corpus instead of one graph")
	apps := fs.Int("apps", 6, "number of applications in the -suite corpus")
	out := fs.String("out", "", "output directory for -suite (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *suite {
		if *out == "" {
			return fmt.Errorf("-suite requires -out DIR")
		}
		man, err := generateSuite(*out, *apps, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "suite: %d apps under %s (seed %d)\n", len(man.Apps), *out, man.Seed)
		for _, a := range man.Apps {
			fmt.Fprintf(w, "  %-28s %-15s %3d tasks %3d edges  depth %2d  spec %s\n",
				a.File, a.Class, a.Tasks, a.Edges, a.Depth, a.SpecHash)
		}
		return nil
	}

	cfg := tgff.DefaultConfig(*tasks)
	cfg.NumTypes = *types
	cfg.MaxInDegree = *indeg
	if *width > 0 {
		cfg.AvgLayerWidth = *width
	}
	g, err := tgff.Generate(cfg, *seed)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(w, "graph %s: %d tasks, %d edges, %d types\n",
			g.Name, g.NumTasks(), len(g.Edges()), g.NumTypes())
		fmt.Fprintf(w, "depth %d, max width %d, level widths %v\n",
			g.Depth(), g.MaxWidth(), g.LevelWidths())
		return nil
	}
	switch *format {
	case "text":
		return tgff.WriteText(w, g)
	case "dot":
		printDot(w, g)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

func printDot(w io.Writer, g *taskgraph.Graph) {
	fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, t := range g.Tasks() {
		fmt.Fprintf(w, "  t%d [label=\"%s\\ntype %d\"];\n", t.ID, t.Name, t.Type)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "  t%d -> t%d;\n", e.From, e.To)
	}
	fmt.Fprintln(w, "}")
}
