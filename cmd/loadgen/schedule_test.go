package main

import (
	"testing"
	"time"
)

// TestScheduleDeterminism is the loadgen contract: equal configs produce
// byte-identical request streams, different seeds different ones.
func TestScheduleDeterminism(t *testing.T) {
	cfg := scheduleConfig{Seed: 7, Rate: 50, Duration: 5 * time.Second, Profile: "dedup-heavy", Tenants: 3, SSEFrac: 0.25}
	a, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if ha, hb := scheduleHash(a), scheduleHash(b); ha != hb {
		t.Fatalf("same config, different schedules: %s != %s", ha, hb)
	}
	cfg.Seed = 8
	c, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scheduleHash(a) == scheduleHash(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleProfiles checks each profile's dedup character and that
// every generated spec is valid and fully precomputed.
func TestScheduleProfiles(t *testing.T) {
	base := scheduleConfig{Seed: 1, Rate: 100, Duration: 3 * time.Second, Tenants: 3, SSEFrac: 0.25}

	for _, profile := range []string{"dedup-heavy", "mixed", "unique"} {
		cfg := base
		cfg.Profile = profile
		reqs, err := buildSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) < 50 {
			t.Fatalf("%s: only %d requests from a 3s window at 100/s", profile, len(reqs))
		}
		uniq := uniqueHashes(reqs)
		switch profile {
		case "dedup-heavy":
			if uniq > len(dedupPool) {
				t.Fatalf("dedup-heavy: %d unique specs, want <= %d", uniq, len(dedupPool))
			}
			// The acceptance bar: a duplicate-heavy mix must offer the
			// fleet at least 50% dedup opportunity.
			if rate := 1 - float64(uniq)/float64(len(reqs)); rate < 0.5 {
				t.Fatalf("dedup-heavy: only %.0f%% dedup opportunity", rate*100)
			}
		case "unique":
			if uniq != len(reqs) {
				t.Fatalf("unique: %d unique specs over %d requests", uniq, len(reqs))
			}
		}
		for i, r := range reqs {
			if len(r.Body) == 0 || r.Hash == "" {
				t.Fatalf("%s: request %d not precomputed", profile, i)
			}
			if r.Tenant < 0 || r.Tenant >= cfg.Tenants {
				t.Fatalf("%s: request %d tenant %d out of range", profile, i, r.Tenant)
			}
			if i > 0 && r.Offset < reqs[i-1].Offset {
				t.Fatalf("%s: offsets not monotone at %d", profile, i)
			}
		}
	}

	if _, err := buildSchedule(scheduleConfig{Seed: 1, Rate: 1, Duration: time.Second, Tenants: 1, Profile: "nope"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestPercentile(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(samples, 50); got != 50*time.Millisecond {
		t.Fatalf("P50 = %s, want 50ms", got)
	}
	if got := percentile(samples, 99); got != 99*time.Millisecond {
		t.Fatalf("P99 = %s, want 99ms", got)
	}
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("P99 of nothing = %s, want 0", got)
	}
}
