// Command loadgen is the gateway's SLO harness: a deterministic open-loop
// traffic generator that drives a clrearlygw fleet and reports admission
// latency percentiles, throughput, fleet-level dedup hit rate and SSE
// fan-out, writing the results as a JSON benchmark artifact.
//
// The entire request stream — Poisson arrival times, spec mix, tenant mix,
// which requests attach an SSE subscriber — is precomputed from -seed, so
// two runs with the same configuration issue byte-identical schedules
// (compare the schedule_hash field). Arrivals are open-loop: requests fire
// at their scheduled instant regardless of how the fleet is coping, which
// is what makes the latency percentiles an SLO measurement rather than a
// self-throttling one.
//
// Usage:
//
//	loadgen -inprocess 2 [-seed 1] [-rate 20] [-duration 10s]
//	        [-profile dedup-heavy|mixed|unique] [-sse-frac 0.25]
//	        [-out BENCH_GW_PR7.json] [-max-p99 2s] [-max-5xx 0]
//
//	loadgen -gateway http://host:8081 -keys KEY1,KEY2,KEY3 ...
//
// -inprocess N spins up a full fleet in this process — gateway plus N
// worker agents running the real DSE solver — which is what `make
// loadtest` uses; -gateway targets an already-running control plane. The
// -max-p99 / -max-5xx gates turn the report into a pass/fail check.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// benchReport is the JSON artifact (BENCH_GW_PR7.json).
type benchReport struct {
	Name        string       `json:"name"`
	GeneratedAt time.Time    `json:"generated_at"`
	Config      reportConfig `json:"config"`

	Schedule struct {
		Requests    int    `json:"requests"`
		UniqueSpecs int    `json:"unique_specs"`
		Hash        string `json:"schedule_hash"`
	} `json:"schedule"`

	Traffic struct {
		Accepted        int     `json:"accepted"`         // 202: queued or attached
		CacheServed     int     `json:"cache_served"`     // 200: front straight from cache
		Rejected429     int     `json:"rejected_429"`     // rate/quota/backpressure
		RejectedOther   int     `json:"rejected_other"`   // 4xx other than 429
		Errors5xx       int     `json:"errors_5xx"`       // the zero-5xx gate watches this
		TransportErrors int     `json:"transport_errors"` // connection-level failures
		P50MS           float64 `json:"p50_ms"`
		P99MS           float64 `json:"p99_ms"`
		JobsPerSec      float64 `json:"jobs_per_sec"` // accepted+served over the arrival window
	} `json:"traffic"`

	Fleet struct {
		Admitted  int64             `json:"admitted"` // jobs that became fleet work
		Completed int64             `json:"completed"`
		Failed    int64             `json:"failed"`
		Cancelled int64             `json:"cancelled"`
		DrainSec  float64           `json:"drain_sec"` // arrival window end → last terminal
		Dedup     gateway.DedupWire `json:"dedup"`
	} `json:"fleet"`

	SSE struct {
		Subscribers int `json:"subscribers"`
		Events      int `json:"events"`
	} `json:"sse"`

	Gates struct {
		MaxP99MS float64 `json:"max_p99_ms,omitempty"`
		Max5xx   int     `json:"max_5xx"`
		Pass     bool    `json:"pass"`
	} `json:"gates"`
}

type reportConfig struct {
	Seed      int64   `json:"seed"`
	Rate      float64 `json:"rate_per_sec"`
	Duration  string  `json:"duration"`
	Profile   string  `json:"profile"`
	SSEFrac   float64 `json:"sse_frac"`
	Tenants   int     `json:"tenants"`
	InProcess int     `json:"inprocess_workers,omitempty"`
	Gateway   string  `json:"gateway,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	gatewayURL := fs.String("gateway", "", "target an already-running gateway at this base URL")
	keys := fs.String("keys", "", "comma-separated tenant API keys for -gateway mode")
	inprocess := fs.Int("inprocess", 0, "spin up an in-process fleet with this many workers instead of -gateway")
	seed := fs.Int64("seed", 1, "schedule seed; equal seeds produce byte-identical request streams")
	rate := fs.Float64("rate", 20, "mean arrival rate, jobs/sec (Poisson)")
	duration := fs.Duration("duration", 10*time.Second, "arrival window")
	profile := fs.String("profile", "dedup-heavy", "spec mix: dedup-heavy, mixed or unique")
	sseFrac := fs.Float64("sse-frac", 0.25, "fraction of requests that also subscribe to /events")
	out := fs.String("out", "BENCH_GW_PR7.json", "benchmark artifact path (empty = stdout only)")
	drain := fs.Duration("drain", 60*time.Second, "post-window deadline for the fleet to finish admitted jobs")
	maxP99 := fs.Duration("max-p99", 0, "fail unless admission P99 is within this bound (0 = no gate)")
	max5xx := fs.Int("max-5xx", -1, "fail when 5xx responses exceed this count (-1 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*gatewayURL == "") == (*inprocess == 0) {
		return fmt.Errorf("exactly one of -gateway or -inprocess is required")
	}

	var apiKeys []string
	base := *gatewayURL
	if *inprocess > 0 {
		fleet, err := startFleet(*inprocess)
		if err != nil {
			return err
		}
		defer fleet.stop()
		base = fleet.url
		apiKeys = fleet.keys
	} else {
		base = strings.TrimRight(base, "/")
		for _, k := range strings.Split(*keys, ",") {
			if k = strings.TrimSpace(k); k != "" {
				apiKeys = append(apiKeys, k)
			}
		}
		if len(apiKeys) == 0 {
			return fmt.Errorf("-gateway mode needs -keys")
		}
	}

	reqs, err := buildSchedule(scheduleConfig{
		Seed: *seed, Rate: *rate, Duration: *duration,
		Profile: *profile, Tenants: len(apiKeys), SSEFrac: *sseFrac,
	})
	if err != nil {
		return err
	}
	rep := &benchReport{Name: "gateway-loadgen", GeneratedAt: time.Now().UTC()}
	rep.Config = reportConfig{
		Seed: *seed, Rate: *rate, Duration: duration.String(), Profile: *profile,
		SSEFrac: *sseFrac, Tenants: len(apiKeys), InProcess: *inprocess, Gateway: *gatewayURL,
	}
	rep.Schedule.Requests = len(reqs)
	rep.Schedule.UniqueSpecs = uniqueHashes(reqs)
	rep.Schedule.Hash = scheduleHash(reqs)
	log.Printf("schedule: %d requests over %s, %d unique specs, hash %s",
		len(reqs), *duration, rep.Schedule.UniqueSpecs, rep.Schedule.Hash)

	before, err := fetchMetrics(base)
	if err != nil {
		return fmt.Errorf("gateway unreachable: %w", err)
	}

	client := &http.Client{}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		sseEvents int
		sseSubs   int
		wg        sync.WaitGroup
		sseWG     sync.WaitGroup
	)
	sseCtx, sseCancel := context.WithTimeout(context.Background(), *duration+*drain)
	defer sseCancel()

	start := time.Now()
	for i := range reqs {
		r := &reqs[i]
		time.Sleep(time.Until(start.Add(r.Offset))) // open loop: fire on schedule
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Do(submitReq(base, apiKeys[r.Tenant], r.Body))
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lat)
			if err != nil {
				rep.Traffic.TransportErrors++
				return
			}
			defer resp.Body.Close()
			var jw service.JobWire
			id := ""
			if json.NewDecoder(resp.Body).Decode(&jw) == nil {
				id = jw.ID
			}
			switch {
			case resp.StatusCode == http.StatusOK:
				rep.Traffic.CacheServed++
			case resp.StatusCode == http.StatusAccepted:
				rep.Traffic.Accepted++
			case resp.StatusCode == http.StatusTooManyRequests:
				rep.Traffic.Rejected429++
			case resp.StatusCode >= 500:
				rep.Traffic.Errors5xx++
			default:
				rep.Traffic.RejectedOther++
			}
			if r.SSE && id != "" && resp.StatusCode == http.StatusAccepted {
				sseSubs++
				sseWG.Add(1)
				go func() {
					defer sseWG.Done()
					n := streamEvents(sseCtx, client, base, apiKeys[r.Tenant], id)
					mu.Lock()
					sseEvents += n
					mu.Unlock()
				}()
			}
		}()
	}
	wg.Wait()
	window := time.Since(start)

	// Drain: the window is over; wait for every admitted job to terminate.
	drainStart := time.Now()
	deadline := drainStart.Add(*drain)
	var after gateway.MetricsWire
	for {
		after, err = fetchMetrics(base)
		if err != nil {
			return err
		}
		terminal := (after.Completed + after.Failed + after.Cancelled) -
			(before.Completed + before.Failed + before.Cancelled)
		if terminal >= after.Admitted-before.Admitted || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	sseWG.Wait()
	sseCancel()

	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	rep.Traffic.P50MS = float64(percentile(latencies, 50).Microseconds()) / 1e3
	rep.Traffic.P99MS = float64(percentile(latencies, 99).Microseconds()) / 1e3
	rep.Traffic.JobsPerSec = float64(rep.Traffic.Accepted+rep.Traffic.CacheServed) / window.Seconds()
	rep.Fleet.Admitted = after.Admitted - before.Admitted
	rep.Fleet.Completed = after.Completed - before.Completed
	rep.Fleet.Failed = after.Failed - before.Failed
	rep.Fleet.Cancelled = after.Cancelled - before.Cancelled
	rep.Fleet.DrainSec = time.Since(drainStart).Seconds()
	rep.Fleet.Dedup = gateway.DedupWire{
		InflightAttach: after.Dedup.InflightAttach - before.Dedup.InflightAttach,
		CacheHits:      after.Dedup.CacheHits - before.Dedup.CacheHits,
		StoreHits:      after.Dedup.StoreHits - before.Dedup.StoreHits,
		Misses:         after.Dedup.Misses - before.Dedup.Misses,
	}
	if hits := rep.Fleet.Dedup.InflightAttach + rep.Fleet.Dedup.CacheHits + rep.Fleet.Dedup.StoreHits; hits+rep.Fleet.Dedup.Misses > 0 {
		rep.Fleet.Dedup.HitRate = float64(hits) / float64(hits+rep.Fleet.Dedup.Misses)
	}
	rep.SSE.Subscribers = sseSubs
	rep.SSE.Events = sseEvents

	rep.Gates.Max5xx = *max5xx
	rep.Gates.Pass = true
	if *maxP99 > 0 {
		rep.Gates.MaxP99MS = float64(maxP99.Microseconds()) / 1e3
		if rep.Traffic.P99MS > rep.Gates.MaxP99MS {
			rep.Gates.Pass = false
		}
	}
	if *max5xx >= 0 && rep.Traffic.Errors5xx > *max5xx {
		rep.Gates.Pass = false
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", *out)
	}
	log.Printf("P50 %.2fms P99 %.2fms, %.1f jobs/s, dedup hit rate %.0f%%, %d SSE events to %d subscribers",
		rep.Traffic.P50MS, rep.Traffic.P99MS, rep.Traffic.JobsPerSec,
		rep.Fleet.Dedup.HitRate*100, rep.SSE.Events, rep.SSE.Subscribers)
	if !rep.Gates.Pass {
		return fmt.Errorf("gate failed: P99 %.2fms (max %.2fms), %d 5xx (max %d)",
			rep.Traffic.P99MS, rep.Gates.MaxP99MS, rep.Traffic.Errors5xx, *max5xx)
	}
	return nil
}

func submitReq(base, key string, body []byte) *http.Request {
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", key)
	return req
}

// streamEvents subscribes to one job's SSE stream and counts data frames
// until the gateway closes it at the terminal event.
func streamEvents(ctx context.Context, client *http.Client, base, key, id string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return 0
	}
	req.Header.Set("X-API-Key", key)
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data:") {
			n++
		}
	}
	return n
}

func fetchMetrics(base string) (gateway.MetricsWire, error) {
	var m gateway.MetricsWire
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// fleet is the -inprocess mode: a gateway and N worker agents running the
// real solver, all inside this process.
type fleet struct {
	url    string
	keys   []string
	gw     *gateway.Gateway
	hs     *http.Server
	agents []*gateway.Agent
	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// fleetTenants is the in-process tenant table: one tenant per priority
// class, rate-limited far above harness rates so the run measures gateway
// latency, not admission rejections.
var fleetTenants = []gateway.TenantConfig{
	{Name: "alpha", Key: "alpha-key", RatePerSec: 500, Burst: 1000, MaxActive: -1, Priority: "high"},
	{Name: "beta", Key: "beta-key", RatePerSec: 500, Burst: 1000, MaxActive: -1, Priority: "normal"},
	{Name: "gamma", Key: "gamma-key", RatePerSec: 500, Burst: 1000, MaxActive: -1, Priority: "low"},
}

func startFleet(workers int) (*fleet, error) {
	gw, err := gateway.New(gateway.Config{
		Tenants:     fleetTenants,
		WorkerToken: "fleet-token",
		QueueCap:    4096,
		LeaseTTL:    10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		return nil, err
	}
	f := &fleet{
		url:  "http://" + ln.Addr().String(),
		keys: []string{"alpha-key", "beta-key", "gamma-key"},
		gw:   gw,
		hs:   &http.Server{Handler: gw},
	}
	go f.hs.Serve(ln)

	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	for i := 0; i < workers; i++ {
		a, err := gateway.NewAgent(gateway.AgentConfig{
			Gateway:     f.url,
			Token:       "fleet-token",
			Name:        fmt.Sprintf("w%d", i),
			PollTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			f.stop()
			return nil, err
		}
		f.agents = append(f.agents, a)
		f.wg.Add(1)
		go func() { defer f.wg.Done(); a.Run(ctx) }()
	}
	log.Printf("in-process fleet up at %s with %d workers", f.url, workers)
	return f, nil
}

func (f *fleet) stop() {
	f.cancel()
	for _, a := range f.agents {
		a.Stop()
	}
	f.wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f.hs.Shutdown(ctx)
	f.gw.Close()
}
