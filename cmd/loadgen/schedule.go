package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/service"
)

// request is one scheduled submission: everything about it — arrival
// offset, tenant, spec, whether an SSE subscriber attaches — is fixed at
// schedule-build time, so a run's traffic is a pure function of the seed.
type request struct {
	Offset time.Duration
	Tenant int // index into the key list
	Spec   service.JobSpec
	Hash   string // spec hash, for offline dedup accounting
	Body   []byte // marshalled spec, as POSTed
	SSE    bool
}

// scheduleConfig parameterizes the generator.
type scheduleConfig struct {
	Seed     int64
	Rate     float64 // mean arrivals per second (Poisson process)
	Duration time.Duration
	Profile  string  // dedup-heavy, mixed or unique
	Tenants  int     // tenant-key count to spread arrivals over
	SSEFrac  float64 // fraction of requests that also subscribe to events
}

// tenantMix is the fixed traffic split across the first three tenants
// (further tenants share the tail uniformly): the fleet's high-priority
// tenant submits half the load.
var tenantMix = []float64{0.5, 0.3, 0.2}

// buildSchedule precomputes the full open-loop schedule. Inter-arrival
// gaps are exponential (seeded Poisson process); spec and tenant draws
// come from the same generator, so two runs with equal config produce
// byte-identical schedules — verified by hash in the benchmark artifact.
func buildSchedule(cfg scheduleConfig) ([]request, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.Tenants < 1 {
		return nil, fmt.Errorf("schedule needs positive rate, duration and tenants")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var reqs []request
	uniqueSeed := int64(1000) // monotone seeds for the unique profile
	for at := time.Duration(0); ; {
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		at += gap
		if at >= cfg.Duration {
			break
		}
		spec, err := specFor(cfg.Profile, rng, &uniqueSeed)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, request{
			Offset: at,
			Tenant: drawTenant(rng, cfg.Tenants),
			Spec:   spec,
			Hash:   spec.Hash(),
			Body:   body,
			SSE:    rng.Float64() < cfg.SSEFrac,
		})
	}
	return reqs, nil
}

// drawTenant picks a tenant index under tenantMix proportions.
func drawTenant(rng *rand.Rand, n int) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range tenantMix {
		if i >= n {
			break
		}
		acc += p
		if u < acc {
			return i
		}
	}
	if n <= len(tenantMix) {
		return n - 1
	}
	// Tail tenants split the leftover mass uniformly.
	extra := n - len(tenantMix)
	return len(tenantMix) + rng.Intn(extra)
}

// dedupPool is the duplicate-heavy profile's whole spec universe: six
// distinct tiny runs, so any nontrivial request count repeats them and the
// fleet-level dedup rate climbs toward 1 - 6/requests.
var dedupPool = []service.JobSpec{
	{App: "sobel", Method: "fcclr", Pop: 8, Gens: 2, Seed: 1},
	{App: "sobel", Method: "fcclr", Pop: 8, Gens: 2, Seed: 2},
	{App: "sobel", Method: "fcclr", Pop: 8, Gens: 2, Seed: 3},
	{App: "jpeg", Method: "fcclr", Pop: 8, Gens: 2, Seed: 1},
	{App: "synthetic", Tasks: 10, Method: "fcclr", Pop: 8, Gens: 2, Seed: 1},
	{App: "synthetic", Tasks: 10, Method: "fcclr", Pop: 8, Gens: 2, Seed: 2},
}

var mixedApps = []string{"sobel", "jpeg", "synthetic"}

// specFor draws one spec under the named profile. All profiles use tiny
// GA budgets (pop 8, 2 generations) so the harness measures the control
// plane, not the solver.
func specFor(profile string, rng *rand.Rand, uniqueSeed *int64) (service.JobSpec, error) {
	var s service.JobSpec
	switch profile {
	case "dedup-heavy":
		s = dedupPool[rng.Intn(len(dedupPool))]
	case "mixed":
		s = service.JobSpec{
			App:    mixedApps[rng.Intn(len(mixedApps))],
			Method: "fcclr",
			Pop:    8,
			Gens:   2,
			Seed:   int64(1 + rng.Intn(32)),
		}
		if s.App == "synthetic" {
			s.Tasks = 10
		}
	case "unique":
		*uniqueSeed++
		s = service.JobSpec{App: "sobel", Method: "fcclr", Pop: 8, Gens: 2, Seed: *uniqueSeed}
	default:
		return s, fmt.Errorf("unknown profile %q (want dedup-heavy, mixed or unique)", profile)
	}
	if err := s.Normalize(); err != nil {
		return s, err
	}
	return s, nil
}

// scheduleHash fingerprints a schedule: equal hashes mean byte-identical
// request streams, which is the loadgen determinism contract.
func scheduleHash(reqs []request) string {
	h := sha256.New()
	for _, r := range reqs {
		fmt.Fprintf(h, "%d|%d|%t|%s\n", r.Offset.Nanoseconds(), r.Tenant, r.SSE, r.Body)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// uniqueHashes counts distinct spec hashes — the schedule's offline lower
// bound on fleet work (everything above it is dedup opportunity).
func uniqueHashes(reqs []request) int {
	seen := make(map[string]struct{}, len(reqs))
	for _, r := range reqs {
		seen[r.Hash] = struct{}{}
	}
	return len(seen)
}

// percentile returns the p-th percentile (nearest-rank) of sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
